"""Tests for the comparison baselines: LDA, Multiflow, trajectory sampling."""

import numpy as np
import pytest

from repro.baselines.lda import Lda
from repro.baselines.multiflow import MultiflowEstimator
from repro.baselines.trajectory import TrajectorySampler
from repro.net.addressing import ip_to_int
from repro.net.packet import Packet


def stream(n=2000, n_flows=50, seed=0, base_delay=100e-6, jitter=50e-6):
    """(packet, tx_time, rx_time) tuples with known delays."""
    rng = np.random.default_rng(seed)
    out = []
    t = 0.0
    for i in range(n):
        t += float(rng.exponential(1e-4))
        p = Packet(src=ip_to_int("10.1.0.1"), dst=ip_to_int("10.2.0.1"),
                   sport=i % n_flows, dport=80, size=500, ts=t)
        delay = base_delay + float(rng.uniform(0, jitter))
        out.append((p, t, t + delay))
    return out


class TestLda:
    def test_exact_mean_without_loss(self):
        lda = Lda(n_buckets=256)
        delays = []
        for p, tx, rx in stream():
            lda.on_tx(p, tx)
            lda.on_rx(p, rx)
            delays.append(rx - tx)
        est = lda.estimate()
        assert est.mean == pytest.approx(np.mean(delays), rel=1e-9)
        assert est.samples == len(delays)

    def test_loss_poisons_some_buckets_only(self):
        lda = Lda(n_buckets=256, bank_probs=(1.0,))
        rng = np.random.default_rng(1)
        kept_delays = []
        for p, tx, rx in stream():
            lda.on_tx(p, tx)
            if rng.random() < 0.05:  # 5% loss after tx accounting
                continue
            lda.on_rx(p, rx)
            kept_delays.append(rx - tx)
        est = lda.estimate()
        assert est.usable_buckets < 256
        assert est.samples > 0
        # usable buckets still estimate the mean well
        assert est.mean == pytest.approx(np.mean(kept_delays), rel=0.15)

    def test_multi_bank_survives_heavy_loss(self):
        """At 30% loss the p=1.0 bank dies but a sampled bank survives."""
        lda = Lda(n_buckets=64, bank_probs=(1.0, 0.05))
        rng = np.random.default_rng(2)
        for p, tx, rx in stream(n=20_000, n_flows=500):
            lda.on_tx(p, tx)
            if rng.random() < 0.3:
                continue
            lda.on_rx(p, rx)
        est = lda.estimate()
        assert est.samples > 0
        assert est.mean is not None

    def test_both_ends_place_identically(self):
        a, b = Lda(seed=3), Lda(seed=3)
        for p, tx, rx in stream(n=100):
            assert a._placement(p) == b._placement(p)

    def test_pipeline_protocol_adapters(self):
        lda = Lda()
        p, tx, rx = stream(n=1)[0]
        lda.on_regular(p, tx)
        lda.observe(p, rx)
        assert lda.tx_packets == lda.rx_packets == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Lda(n_buckets=0)
        with pytest.raises(ValueError):
            Lda(bank_probs=())
        with pytest.raises(ValueError):
            Lda(bank_probs=(1.5,))


class TestMultiflow:
    def test_constant_delay_recovered_exactly(self):
        mf = MultiflowEstimator()
        for p, tx, rx in stream(jitter=0.0):
            mf.on_regular(p, tx)
            mf.observe(p, rx)
        for key, est in mf.estimates().items():
            assert est == pytest.approx(100e-6)

    def test_two_sample_estimator_formula(self):
        mf = MultiflowEstimator()
        packets = [Packet(src=1, dst=2, sport=1, size=100, ts=t) for t in (0.0, 0.5, 1.0)]
        delays = [10e-6, 99e-6, 30e-6]  # middle packet invisible to Multiflow
        for p, d in zip(packets, delays):
            mf.on_regular(p, p.ts)
            mf.observe(p, p.ts + d)
        est = mf.estimate_flow(packets[0].flow_key)
        assert est == pytest.approx((10e-6 + 30e-6) / 2)

    def test_unseen_flow_returns_none(self):
        mf = MultiflowEstimator()
        assert mf.estimate_flow((9, 9, 9, 9, 6)) is None

    def test_flow_missing_at_one_end_excluded(self):
        mf = MultiflowEstimator()
        p = Packet(src=1, dst=2, sport=1, size=100, ts=0.0)
        mf.on_regular(p, 0.0)  # lost before the receiver
        assert mf.estimates() == {}


class TestTrajectory:
    def test_sampled_delays_exact(self):
        tr = TrajectorySampler(prob=0.2, seed=4)
        expected = {}
        for p, tx, rx in stream(n=5000):
            tr.on_regular(p, tx)
            tr.observe(p, rx)
        for key, delay in tr.delays():
            assert 100e-6 <= delay <= 151e-6

    def test_sampling_consistent_at_both_ends(self):
        """Hash-based selection: both points sample the same packets."""
        tr = TrajectorySampler(prob=0.1, seed=5)
        for p, tx, rx in stream(n=5000):
            tr.on_regular(p, tx)
            tr.observe(p, rx)
        assert tr.tx_sampled == tr.rx_sampled == len(tr.delays())

    def test_sampling_rate_near_prob(self):
        tr = TrajectorySampler(prob=0.1, seed=6)
        n = 20_000
        for p, tx, rx in stream(n=n, n_flows=1000):
            tr.on_regular(p, tx)
        assert 0.08 * n < tr.tx_sampled < 0.12 * n

    def test_per_flow_coverage_is_partial(self):
        """Sampling misses most short flows — RLI's advantage."""
        tr = TrajectorySampler(prob=0.02, seed=7)
        flows = set()
        for p, tx, rx in stream(n=5000, n_flows=500):
            flows.add(p.flow_key)
            tr.on_regular(p, tx)
            tr.observe(p, rx)
        assert len(tr.per_flow()) < len(flows)

    def test_invalid_prob(self):
        with pytest.raises(ValueError):
            TrajectorySampler(prob=0.0)
