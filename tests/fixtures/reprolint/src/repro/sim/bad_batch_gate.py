"""Bad fixture for BATCH002 (path mirrors repro/sim/).

Calls a collaborator's fast path but never consults the capability
flag, so there is no object-path fallback.  Never imported.
"""


def run(receiver, columns):
    return receiver.observe_batch(columns)      # BATCH002: ungated
