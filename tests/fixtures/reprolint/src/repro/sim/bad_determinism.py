"""Bad fixture: every DET rule must fire on this file.

Never imported — scanned by tests/test_reprolint.py only.  The path
mirrors src/repro/sim/ so the determinism scope matches.
"""

import os
import random
import time
from datetime import datetime

import numpy as np


def wall_clock_seed():
    started = time.time()                     # DET001
    stamp = datetime.now()                    # DET001
    entropy = os.urandom(8)                   # DET001
    return started, stamp, entropy


def global_rng():
    jitter = random.random()                  # DET002
    random.shuffle([1, 2, 3])                 # DET002
    noise = np.random.rand(4)                 # DET002
    return jitter, noise


def seeded_rng_is_fine(seed):
    rng = random.Random(seed)                 # ok: explicit instance
    gen = np.random.default_rng(seed)         # ok: seeded generator
    return rng.random(), gen.random()


def set_iteration(flows, extra):
    out = []
    for flow in set(flows) | {extra}:         # DET003
        out.append(flow)
    both = [f for f in flows.keys() & set(extra)]   # DET003
    ordered = [f for f in sorted(set(flows))]       # ok: sorted
    suppressed = list(x for x in set(flows))  # reprolint: disable=DET003 -- order feeds an order-insensitive sum
    return out, both, ordered, suppressed


def unjustified(flows):
    return [x for x in set(flows)]  # reprolint: disable=DET003
