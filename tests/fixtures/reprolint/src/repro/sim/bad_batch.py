"""Bad fixture for BATCH001/BATCH003 (path mirrors repro/sim/).

Never imported — scanned by tests/test_reprolint.py only.
"""

import numpy as np


class Orphan:
    def frobnicate_batch(self, xs):             # BATCH001: no frobnicate()
        return xs


def resample_batch(xs):                         # BATCH001: no resample()
    return xs


class Paired:
    def observe(self, x):
        return x

    def observe_batch(self, xs):                # ok: sibling observe()
        return xs

    def append(self, x):
        return x

    def extend_batch(self, xs):                 # ok: mapped sibling append()
        return xs

    def _scan_batch(self, xs):                  # ok: private helper
        return xs


def bad_reductions(values, deltas):
    total = np.sum(values)                      # BATCH003
    running = deltas.cumsum()                   # BATCH003
    exact = np.add.reduce(values)               # ok: sequential order
    steps = np.add.accumulate(deltas)           # ok: sequential order
    counted = values.sum()  # reprolint: disable=BATCH003 -- int64 counters in this fixture
    return total, running, exact, steps, counted
