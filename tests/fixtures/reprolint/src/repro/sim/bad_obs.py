"""Bad fixture: kernel scope touching the obs layer the wrong ways.

Never imported — only parsed by reprolint's tests.  Line numbers are
asserted in tests/test_reprolint.py; edit with care.
"""

from repro import obs                          # line 7: OBS002 (package)
from repro.obs import trace                    # line 8: OBS002 (trace)
from repro.obs import span                     # line 9: OBS002 (re-export)
from repro.obs import metrics as obs_metrics   # line 10: allowed
from repro.obs.metrics import count            # line 11: allowed


def timed_step(state):
    with obs.span("sim.step"):                 # line 15: OBS001
        state.advance()
    payload = obs.drain_payload()              # line 17: OBS001
    trace.span("sim.inner")                    # line 18: OBS001
    span("sim.direct")                         # line 19: OBS001
    return payload


def counted_step(state):
    obs_metrics.count("sim.steps")             # line 24: clean (statement)
    count("sim.steps")                         # line 25: clean (statement)
    x = obs_metrics.count("sim.steps")         # line 26: OBS003
    if count("sim.steps"):                     # line 27: OBS003
        return x
    return obs_metrics.gauge("sim.depth", 1.0)  # line 29: OBS003


def suppressed_step():
    with obs.span("sim.ok"):  # reprolint: disable=OBS001 -- fixture: justified suppression must silence
        pass
