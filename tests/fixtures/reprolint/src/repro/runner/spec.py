"""Bad fixture for the KEY rules (path mirrors runner/spec.py).

Never imported — scanned by tests/test_reprolint.py only.
"""

from dataclasses import dataclass

CACHE_KEY_EXEMPT = {
    "LeakyJob.label": "display name only; never reaches the simulation",
}

PREPARE_KEY_EXEMPT = {
    "ShardyJob.shard": "replay selector over the shared artifact",
}


@dataclass(frozen=True)
class LeakyJob:
    """`run_seed` changes results but is missing from the token: KEY001.

    `label` is missing too, but the allowlist above exempts it.
    """

    config: tuple
    run_seed: int
    label: str

    def cache_token(self) -> dict:
        return {"kind": "leaky", "config": self.config}


@dataclass(frozen=True)
class ShardyJob:
    """`batch` missing from prepare_key: KEY002 (shard is exempt)."""

    n_packets: int
    shard: int
    batch: bool

    @property
    def prepare_key(self) -> tuple:
        return ("shardy", self.n_packets)

    def cache_token(self) -> dict:
        return {
            "kind": "shardy",
            "n_packets": self.n_packets,
            "shard": self.shard,
            "batch": self.batch,
        }


@dataclass(frozen=True)
class CompleteJob:
    """Every field reaches the token via a helper: no findings."""

    alpha: int
    beta: float

    def _parts(self) -> dict:
        return {"alpha": self.alpha, "beta": self.beta}

    def cache_token(self) -> dict:
        return {"kind": "complete", **self._parts()}
