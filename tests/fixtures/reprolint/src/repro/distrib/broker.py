"""Bad fixture for the LOCK rules (path mirrors distrib/broker.py).

Never imported — scanned by tests/test_reprolint.py only.  A miniature
broker shape exercising every lock-discipline rule.
"""

import threading


class Broker:
    def __init__(self):
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._workers = {}          # ok: constructor is pre-sharing
        self._pending = []

    def good_path(self, driver, outcomes):
        with self._lock:
            self._pending.append(outcomes)      # ok: lock held
            self._book(driver, outcomes)        # ok: holds= satisfied
        with self._wake:
            self._workers.clear()               # ok: _wake wraps _lock
        with driver.send_lock:
            driver.conn.send(("done",))         # ok: send lock held

    def bad_collection(self, worker):
        self._workers[worker.id] = worker       # LOCK001

    def bad_value_state(self, sweep):
        sweep.remaining.discard(1)              # LOCK002

    def _book(self, driver, outcomes):  # reprolint: holds=_lock
        driver.sweeps.add(outcomes[0])
        driver.journal.record_settled(outcomes)

    def bad_holds_call(self, driver, outcomes):
        self._book(driver, outcomes)            # LOCK003

    def bad_send(self, driver):
        driver.conn.send(("progress", 1))       # LOCK004

    def bad_journal(self, sweep, live):
        with self._lock:
            pass
        sweep.journal.record_settled(live)      # LOCK002 + LOCK004

    def suppressed_probe(self):
        return len(self._pending)  # reprolint: disable=LOCK001 -- diagnostic snapshot; torn size is acceptable
