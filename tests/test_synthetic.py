"""Tests for the synthetic OC-192-like trace generator."""

import numpy as np
import pytest

from repro.net.addressing import Prefix, ip_to_int
from repro.sim.topology import FatTree
from repro.traffic.synthetic import TraceConfig, generate_fattree_trace, generate_trace


class TestGenerateTrace:
    def test_sorted_by_time(self, small_trace):
        times = [p.ts for p in small_trace]
        assert times == sorted(times)

    def test_within_duration(self, small_trace):
        assert all(0.0 <= p.ts < 0.5 for p in small_trace)

    def test_packet_count_near_target(self):
        cfg = TraceConfig(duration=1.0, n_packets=20_000)
        trace = generate_trace(cfg, seed=1)
        assert 0.5 * 20_000 < len(trace) < 1.5 * 20_000

    def test_mean_flow_size_near_target(self):
        cfg = TraceConfig(duration=2.0, n_packets=30_000, mean_flow_pkts=15.0)
        trace = generate_trace(cfg, seed=2)
        mean_size = len(trace) / trace.n_flows
        assert 5.0 < mean_size < 40.0  # heavy tail + truncation: loose band

    def test_addresses_in_configured_pools(self):
        cfg = TraceConfig(duration=0.2, n_packets=2000,
                          src_base="10.1.0.0", dst_base="10.2.0.0")
        trace = generate_trace(cfg, seed=3)
        src_prefix = Prefix.parse("10.1.0.0/16")
        dst_prefix = Prefix.parse("10.2.0.0/16")
        assert all(p.src in src_prefix for p in trace)
        assert all(p.dst in dst_prefix for p in trace)

    def test_reproducible_per_seed(self):
        cfg = TraceConfig(duration=0.2, n_packets=1000)
        a = generate_trace(cfg, seed=9)
        b = generate_trace(cfg, seed=9)
        assert len(a) == len(b)
        assert all(x.flow_key == y.flow_key and x.ts == y.ts for x, y in zip(a, b))

    def test_different_seed_differs(self):
        cfg = TraceConfig(duration=0.2, n_packets=1000)
        a = generate_trace(cfg, seed=1)
        b = generate_trace(cfg, seed=2)
        assert [p.ts for p in a[:50]] != [q.ts for q in b[:50]]

    def test_no_single_flow_dominates_rate(self):
        """Backbone-like: per-flow rate small relative to the aggregate."""
        cfg = TraceConfig(duration=2.0, n_packets=50_000)
        trace = generate_trace(cfg, seed=4)
        by_flow = {}
        for p in trace:
            by_flow[p.flow_key] = by_flow.get(p.flow_key, 0) + p.size
        top = max(by_flow.values())
        assert top < 0.15 * trace.total_bytes

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TraceConfig(duration=0.0)
        with pytest.raises(ValueError):
            TraceConfig(n_packets=0)
        with pytest.raises(ValueError):
            TraceConfig(mean_gap=0.0)


class TestFatTreeTrace:
    def test_endpoints_from_pairs(self):
        ft = FatTree(4)
        pairs = [(ft.host_address(0, 0, 0), ft.host_address(1, 0, 0)),
                 (ft.host_address(0, 1, 1), ft.host_address(2, 1, 0))]
        cfg = TraceConfig(duration=0.2, n_packets=2000)
        trace = generate_fattree_trace(cfg, pairs, seed=5)
        allowed = set(pairs)
        assert all((p.src, p.dst) in allowed for p in trace)

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            generate_fattree_trace(TraceConfig(), [], seed=0)
