"""Tests for error metrics, CDFs and report formatting."""

import pytest

from repro.analysis.cdf import Ecdf
from repro.analysis.metrics import flow_mean_errors, flow_std_errors, relative_error
from repro.analysis.report import format_cdf_series, format_table, pct, us
from repro.core.flowstats import FlowStatsTable

KEY1 = (1, 2, 3, 4, 6)
KEY2 = (5, 6, 7, 8, 6)
KEY3 = (9, 9, 9, 9, 6)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(9.0, 10.0) == pytest.approx(0.1)

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


def tables():
    est, true = FlowStatsTable(), FlowStatsTable()
    for v in (10.0, 12.0):  # true mean 11, std 1
        true.add(KEY1, v)
    for v in (11.0, 13.0):  # est mean 12, std 1
        est.add(KEY1, v)
    true.add(KEY2, 5.0)  # single-packet flow
    est.add(KEY2, 6.0)
    true.add(KEY3, 7.0)  # flow with no estimate
    return est, true


class TestFlowErrors:
    def test_mean_errors(self):
        est, true = tables()
        join = flow_mean_errors(est, true)
        assert join.joined == 2
        assert join.skipped_missing == 1
        assert sorted(join.errors) == [pytest.approx(1 / 11), pytest.approx(0.2)]

    def test_std_errors_skip_singletons(self):
        est, true = tables()
        join = flow_std_errors(est, true)
        assert join.joined == 1  # only KEY1 has >= 2 packets
        assert join.errors[0] == pytest.approx(0.0)

    def test_std_errors_skip_zero_std(self):
        est, true = FlowStatsTable(), FlowStatsTable()
        for _ in range(3):
            true.add(KEY1, 5.0)  # zero variance
            est.add(KEY1, 5.0)
        join = flow_std_errors(est, true)
        assert join.joined == 0
        assert join.skipped_zero == 1


class TestEcdf:
    def test_fraction_below(self):
        cdf = Ecdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_below(2.5) == 0.5
        assert cdf.fraction_below(0.5) == 0.0
        assert cdf.fraction_below(10.0) == 1.0

    def test_fraction_below_inclusive(self):
        cdf = Ecdf([1.0, 2.0])
        assert cdf.fraction_below(1.0) == 0.5

    def test_median_quantiles(self):
        cdf = Ecdf(range(1, 101))
        assert cdf.median == pytest.approx(50.5)
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 100.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            Ecdf([1.0]).quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Ecdf([])

    def test_curve_monotone(self):
        cdf = Ecdf([0.01 * i for i in range(1, 200)])
        curve = cdf.curve(points=20)
        fractions = [f for _, f in curve]
        assert fractions == sorted(fractions)

    def test_summary_keys(self):
        s = Ecdf([0.05, 0.15, 0.2]).summary()
        assert s["n"] == 3
        assert s["frac_below_10pct"] == pytest.approx(1 / 3)


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["a", "long-header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # equal widths

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_cdf_series(self):
        out = format_cdf_series("x", [(0.1, 0.5), (1.0, 0.9)])
        assert out.startswith("x:")
        assert "0.1->0.50" in out

    def test_pct_us(self):
        assert pct(0.125) == "12.5%"
        assert us(83e-6) == "83.0us"
