"""Tests for placement formulas and the concrete planner (paper §3.1)."""

import pytest

from repro.core.placement import (
    RlirPlacement,
    instances_all_tor_pairs_enumerated,
    instances_all_tor_pairs_paper,
    instances_full_deployment,
    instances_interface_pair,
    instances_tor_pair,
)
from repro.sim.topology import FatTree


class TestFormulas:
    @pytest.mark.parametrize("k,expected", [(4, 6), (8, 10), (48, 50)])
    def test_interface_pair(self, k, expected):
        assert instances_interface_pair(k) == expected  # k + 2

    @pytest.mark.parametrize("k", [4, 8, 16])
    def test_tor_pair_formula(self, k):
        assert instances_tor_pair(k) == k * (k + 2) // 2

    @pytest.mark.parametrize("k", [4, 8, 16])
    def test_all_tor_pairs_paper_formula(self, k):
        assert instances_all_tor_pairs_paper(k) == (k // 2) ** 2 * (k + 1)

    @pytest.mark.parametrize("k", [4, 8, 16])
    def test_enumerated_is_k_cubed_over_two(self, k):
        assert instances_all_tor_pairs_enumerated(k) == k**3 // 2

    def test_full_deployment_k4_order(self):
        """Full deployment is Theta(k^4): ratio to k^4 stabilizes at 5/4."""
        big = instances_full_deployment(48)
        assert big / 48**4 == pytest.approx(1.25, rel=0.05)

    def test_partial_far_cheaper_than_full(self):
        for k in (8, 16, 48):
            assert instances_all_tor_pairs_enumerated(k) < 0.2 * instances_full_deployment(k)

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            instances_interface_pair(5)


class TestPlanner:
    @pytest.mark.parametrize("k", [4, 8])
    def test_interface_pair_count_matches_formula(self, k):
        planner = RlirPlacement(FatTree(k))
        instances = planner.interface_pair((0, 0), 0, (1, 0))
        assert len(instances) == instances_interface_pair(k)

    @pytest.mark.parametrize("k", [4, 8])
    def test_tor_pair_count_matches_formula(self, k):
        planner = RlirPlacement(FatTree(k))
        instances = planner.tor_pair((0, 0), (1, 1))
        assert len(instances) == instances_tor_pair(k)

    @pytest.mark.parametrize("k", [4, 8])
    def test_all_tor_pairs_count_matches_enumerated_formula(self, k):
        planner = RlirPlacement(FatTree(k))
        assert len(planner.all_tor_pairs()) == instances_all_tor_pairs_enumerated(k)

    def test_interface_pair_roles(self, fattree4):
        planner = RlirPlacement(fattree4)
        instances = planner.interface_pair((0, 1), 1, (2, 0))
        roles = [i.role for i in instances]
        assert roles.count("tor-sender") == 1
        assert roles.count("tor-receiver") == 1
        assert roles.count("core-ingress") == 2  # k/2 cores
        assert roles.count("core-egress") == 2

    def test_interface_pair_uses_only_one_core_group(self, fattree4):
        planner = RlirPlacement(fattree4)
        instances = planner.interface_pair((0, 0), 1, (1, 0))
        core_names = {i.switch_name for i in instances if "core" in i.role}
        # uplink 1 -> aggregation switch 1 -> core group 1 only
        assert core_names == {"core(1,0)", "core(1,1)"}

    def test_instances_are_distinct_interfaces(self, fattree8):
        planner = RlirPlacement(fattree8)
        instances = planner.tor_pair((0, 0), (3, 1))
        assert len({(i.switch_name, i.port_index) for i in instances}) == len(instances)

    def test_same_tor_rejected(self, fattree4):
        planner = RlirPlacement(fattree4)
        with pytest.raises(ValueError):
            planner.tor_pair((0, 0), (0, 0))
        with pytest.raises(ValueError):
            planner.interface_pair((0, 0), 0, (0, 0))

    def test_bad_uplink_rejected(self, fattree4):
        with pytest.raises(ValueError):
            RlirPlacement(fattree4).interface_pair((0, 0), 5, (1, 0))
