"""Tests for IPv4 parsing, prefixes and longest-prefix matching."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addressing import Prefix, PrefixTrie, int_to_ip, ip_to_int


class TestIpConversion:
    def test_roundtrip_known(self):
        assert ip_to_int("10.0.0.1") == 0x0A000001
        assert int_to_ip(0x0A000001) == "10.0.0.1"

    def test_zero_and_max(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == (1 << 32) - 1

    def test_bad_octet_count(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")

    def test_octet_out_of_range(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0.256")

    def test_int_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)
        with pytest.raises(ValueError):
            int_to_ip(-1)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestPrefix:
    def test_canonicalizes_host_bits(self):
        p = Prefix(ip_to_int("10.1.2.3"), 16)
        assert int_to_ip(p.network) == "10.1.0.0"

    def test_parse_with_and_without_length(self):
        assert Prefix.parse("10.1.0.0/16").length == 16
        assert Prefix.parse("10.1.2.3").length == 32

    def test_contains(self):
        p = Prefix.parse("10.1.0.0/16")
        assert ip_to_int("10.1.255.255") in p
        assert ip_to_int("10.2.0.0") not in p

    def test_zero_length_contains_everything(self):
        p = Prefix(0, 0)
        assert p.contains(0)
        assert p.contains((1 << 32) - 1)

    def test_overlaps(self):
        a = Prefix.parse("10.1.0.0/16")
        b = Prefix.parse("10.1.2.0/24")
        c = Prefix.parse("10.2.0.0/16")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_subprefixes(self):
        low, high = Prefix.parse("10.0.0.0/8").subprefixes()
        assert str(low) == "10.0.0.0/9"
        assert str(high) == "10.128.0.0/9"

    def test_subprefix_of_host_route_fails(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.1/32").subprefixes()

    def test_equality_and_hash(self):
        assert Prefix.parse("10.1.0.0/16") == Prefix.parse("10.1.99.0/16")
        assert len({Prefix.parse("10.1.0.0/16"), Prefix.parse("10.1.4.0/16")}) == 1

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            Prefix(0, 33)


class TestPrefixTrie:
    def test_longest_match_wins(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "coarse")
        trie.insert(Prefix.parse("10.1.0.0/16"), "mid")
        trie.insert(Prefix.parse("10.1.2.0/24"), "fine")
        assert trie.lookup(ip_to_int("10.1.2.3")) == "fine"
        assert trie.lookup(ip_to_int("10.1.9.9")) == "mid"
        assert trie.lookup(ip_to_int("10.9.9.9")) == "coarse"
        assert trie.lookup(ip_to_int("11.0.0.0")) is None

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix(0, 0), "default")
        trie.insert(Prefix.parse("10.0.0.0/8"), "ten")
        assert trie.lookup(ip_to_int("1.2.3.4")) == "default"
        assert trie.lookup(ip_to_int("10.2.3.4")) == "ten"

    def test_replace_value(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, 1)
        trie.insert(p, 2)
        assert trie.lookup_exact(p) == 2
        assert len(trie) == 1

    def test_lookup_exact_misses_covering_prefix(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), 1)
        assert trie.lookup_exact(Prefix.parse("10.1.0.0/16")) is None

    def test_items_roundtrip(self):
        trie = PrefixTrie()
        prefixes = [Prefix.parse(s) for s in ("10.0.0.0/8", "10.1.0.0/16", "192.168.1.0/24")]
        for i, p in enumerate(prefixes):
            trie.insert(p, i)
        assert dict(trie.items()) == {p: i for i, p in enumerate(prefixes)}

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 32) - 1),
                st.integers(min_value=0, max_value=32),
            ),
            min_size=1,
            max_size=30,
        ),
        st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1), min_size=1, max_size=30),
    )
    def test_matches_bruteforce(self, entries, queries):
        """Trie LPM equals brute-force longest-match over the same entries."""
        trie = PrefixTrie()
        table = {}
        for i, (net, length) in enumerate(entries):
            p = Prefix(net, length)
            trie.insert(p, i)
            table[p] = i  # later insert wins, same as trie semantics
        for addr in queries:
            best = None
            best_len = -1
            for p, v in table.items():
                if p.contains(addr) and p.length > best_len:
                    best, best_len = v, p.length
            assert trie.lookup(addr) == best
