"""Tests for the N-switch chain environment."""

import pytest

from repro.net.addressing import ip_to_int
from repro.net.packet import Packet, PacketKind
from repro.sim.chain import ChainConfig, SwitchChain


def regular(ts, size=1000, sport=1):
    return Packet(src=ip_to_int("10.1.0.1"), dst=ip_to_int("10.2.0.1"),
                  sport=sport, size=size, ts=ts)


def cross(ts, size=1000):
    return Packet(src=ip_to_int("10.9.0.1"), dst=ip_to_int("10.10.0.1"),
                  size=size, ts=ts, kind=PacketKind.CROSS)


def chain(n_hops=3, rate=8e6, buffer_bytes=None):
    return SwitchChain(ChainConfig(n_hops=n_hops, rate_bps=rate,
                                   buffer_bytes=buffer_bytes, proc_delay=0.0))


class Recorder:
    def __init__(self):
        self.seen = []

    def observe(self, packet, now):
        self.seen.append((packet, now))


class TestSwitchChain:
    def test_delay_is_sum_of_hops(self):
        rx = Recorder()
        chain(n_hops=3).run([regular(0.0)], receiver=rx)
        (_, arrival), = rx.seen
        assert arrival == pytest.approx(3 * 1e-3)  # 1 ms serialization x 3

    def test_two_hop_chain_equals_pipeline(self):
        """A 2-hop chain with hop-1 cross traffic reproduces the
        TwoSwitchPipeline's semantics."""
        from repro.sim.pipeline import PipelineConfig, TwoSwitchPipeline

        regs = [regular(i * 1e-4, sport=i) for i in range(200)]
        crs = [(i * 3e-4, cross(i * 3e-4)) for i in range(50)]
        rx_chain, rx_pipe = Recorder(), Recorder()
        chain(n_hops=2).run([p.clone() for p in regs],
                            {1: [(t, p.clone()) for t, p in crs]},
                            receiver=rx_chain)
        TwoSwitchPipeline(PipelineConfig(8e6, 8e6, None, None, 0.0)).run(
            [p.clone() for p in regs], [(t, p.clone()) for t, p in crs],
            receiver=rx_pipe)
        assert [t for _, t in rx_chain.seen] == pytest.approx(
            [t for _, t in rx_pipe.seen])

    def test_tap_time_at_first_hop(self):
        rx = Recorder()
        chain().run([regular(0.7)], receiver=rx)
        (p, _), = rx.seen
        assert p.tap_time == 0.7

    def test_cross_confined_to_its_hop(self):
        """Hop-1 cross traffic delays the through stream at hop 1 only."""
        rx_with = Recorder()
        rx_without = Recorder()
        chain(n_hops=3).run([regular(1e-3)], receiver=rx_without)
        chain(n_hops=3).run(
            [regular(1e-3)],
            {1: [(0.5e-3, cross(0.5e-3, size=2000))]},
            receiver=rx_with)
        (_, t_without), = rx_without.seen
        (_, t_with), = rx_with.seen
        assert t_with > t_without
        # the extra delay is bounded by one hop's cross serialization
        assert t_with - t_without <= 2e-3 + 1e-9

    def test_cross_never_reaches_receiver(self):
        rx = Recorder()
        chain(n_hops=2).run([regular(0.0)],
                            {0: [(0.0, cross(0.0))], 1: [(0.0, cross(0.0))]},
                            receiver=rx)
        assert all(p.is_regular for p, _ in rx.seen)

    def test_sender_refs_ride_whole_chain(self):
        class OneRef:
            def on_regular(self, packet, now):
                ref = Packet(src=0, dst=0, size=64, ts=now,
                             kind=PacketKind.REFERENCE, sender_id=1,
                             ref_timestamp=now)
                ref.tap_time = now
                return [ref]

        rx = Recorder()
        result = chain(n_hops=4).run([regular(0.0)], sender=OneRef(), receiver=rx)
        kinds = [p.kind for p, _ in rx.seen]
        assert kinds == [PacketKind.REGULAR, PacketKind.REFERENCE]
        assert result.refs_injected == 1

    def test_loss_accounting(self):
        result = chain(n_hops=2, buffer_bytes=1500).run(
            [regular(0.0, sport=i) for i in range(5)])
        assert result.regular_in == 5
        assert result.regular_out < 5
        assert result.regular_loss_rate > 0

    def test_per_hop_utilization(self):
        result = chain(n_hops=2).run(
            [regular(i * 0.01) for i in range(10)],
            {1: [(i * 0.01, cross(i * 0.01)) for i in range(10)]},
            duration=0.1)
        assert result.utilization(1) == pytest.approx(2 * result.utilization(0))

    def test_heterogeneous_rates(self):
        cfg = ChainConfig(n_hops=2, rates_bps=[8e6, 4e6], buffer_bytes=None,
                          proc_delay=0.0)
        rx = Recorder()
        SwitchChain(cfg).run([regular(0.0)], receiver=rx)
        (_, arrival), = rx.seen
        assert arrival == pytest.approx(1e-3 + 2e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChainConfig(n_hops=0)
        with pytest.raises(ValueError):
            ChainConfig(n_hops=2, rates_bps=[1e6])
        with pytest.raises(ValueError):
            chain(n_hops=2).run([], {5: []})

    def test_accuracy_degrades_gracefully_over_hops(self):
        """RLI across more hops still tracks per-flow truth (multi-queue
        delay locality) — the premise RLIR stands on."""
        from repro.analysis.cdf import Ecdf
        from repro.analysis.metrics import flow_mean_errors
        from repro.core.demux import SingleSenderDemux
        from repro.core.injection import StaticInjection
        from repro.core.receiver import RliReceiver
        from repro.core.sender import RliSender
        from repro.traffic.synthetic import TraceConfig, generate_trace

        trace = generate_trace(TraceConfig(duration=0.5, n_packets=5000),
                               seed=9)
        rate = trace.total_bytes * 8 / 0.5 / 0.5  # 50% per-hop utilization
        for hops in (1, 3):
            sender = RliSender(1, rate, StaticInjection(20))
            receiver = RliReceiver(SingleSenderDemux(1))
            cfg = ChainConfig(n_hops=hops, rate_bps=rate, proc_delay=0.0)
            SwitchChain(cfg).run(trace.clone_packets(), sender=sender,
                                 receiver=receiver)
            receiver.finalize()
            join = flow_mean_errors(receiver.flow_estimated, receiver.flow_true)
            assert Ecdf(join.errors).median < 0.6
