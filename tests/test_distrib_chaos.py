"""Chaos soak: real broker/worker processes under kill, freeze, and bounce.

The interleaving suite (`test_distrib_interleave.py`) proves the broker's
state machine correct one scripted ordering at a time; this file proves
the *deployed* stack — subprocesses, TCP, SIGKILL — converges to the same
bytes.  The headline scenario is the ISSUE's acceptance criterion: a
broker SIGKILLed mid-sweep and restarted on the same port (same journal
directory) must complete the sweep with output byte-identical to the
serial backend, the driver riding out the outage through
reconnect-with-backoff and the workers rejoining on their own.

Scale is 0.01 by default; the CI ``chaos-soak`` lane raises it via
``REPRO_CHAOS_SCALE=0.02`` for a longer mid-sweep window.
"""

import os
import pickle
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.distrib import DistributedRunner
from repro.experiments.config import ExperimentConfig
from repro.runner import JobSpec, ParallelRunner

POLL_TIMEOUT = 300.0
SCALE = float(os.environ.get("REPRO_CHAOS_SCALE", "0.01"))
SRC_ROOT = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(scale=SCALE, seed=7)


@pytest.fixture(scope="module")
def jobs(cfg):
    """Six independent conditions → six chunks: a real mid-sweep window."""
    return [
        JobSpec.from_config(cfg, scheme, "random", load)
        for scheme in ("adaptive", "static")
        for load in (0.3, 0.67, 0.9)
    ]


@pytest.fixture(scope="module")
def serial_blobs(jobs):
    return [pickle.dumps(r) for r in ParallelRunner(jobs=1).run(jobs)]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _await_port(port: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port), timeout=1.0).close()
            return
        except OSError:
            time.sleep(0.1)
    raise TimeoutError(f"nothing listening on 127.0.0.1:{port}")


def _spawn(*args: str, extra_env=None) -> subprocess.Popen:
    env = os.environ.copy()
    env["PYTHONPATH"] = (
        SRC_ROOT + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else SRC_ROOT
    )
    if extra_env:
        env.update(extra_env)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _spawn_broker(port: int, journal_dir: str) -> subprocess.Popen:
    proc = _spawn(
        "broker", "--listen", f"127.0.0.1:{port}",
        "--heartbeat-timeout", "5", "--journal-dir", journal_dir,
    )
    _await_port(port)
    return proc


def _spawn_worker(port: int, extra_env=None) -> subprocess.Popen:
    return _spawn(
        "worker", "--connect", f"127.0.0.1:{port}",
        "--heartbeat", "0.5", "--reconnects", "40",
        extra_env=extra_env,
    )


def _reap(*procs: subprocess.Popen) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            pass


class TestBrokerBounce:
    def test_sigkill_bounce_mid_sweep_is_byte_identical(
        self, tmp_path, jobs, serial_blobs
    ):
        """SIGKILL the broker after the first result; restart on the same
        port with the same journal; the sweep must finish byte-identical
        to serial with no job outcome lost or duplicated."""
        port = _free_port()
        journal_dir = str(tmp_path / "journal")
        state = {"broker": _spawn_broker(port, journal_dir), "bounced": False}
        workers = [_spawn_worker(port) for _ in range(2)]

        def maybe_bounce(snapshot):
            # runs in the driver's receive loop: by the time the next
            # recv() hits the dead socket, the replacement broker is
            # already listening on the same port with the same journal
            if snapshot.done >= 1 and not state["bounced"]:
                state["bounced"] = True
                state["broker"].send_signal(signal.SIGKILL)
                state["broker"].wait(timeout=10)
                state["broker"] = _spawn_broker(port, journal_dir)

        runner = DistributedRunner(
            broker=f"127.0.0.1:{port}",
            progress=maybe_bounce,
            poll_timeout=POLL_TIMEOUT,
            reconnect_attempts=40,
            reconnect_delay=0.25,
        )
        try:
            results = runner.run(jobs)
            assert state["bounced"], (
                "the sweep finished before any bounce was injected — "
                "the scenario did not exercise broker recovery"
            )
            assert [pickle.dumps(r) for r in results] == serial_blobs
        finally:
            _reap(state["broker"], *workers)

    def test_bounce_plus_worker_kill_and_freeze(
        self, tmp_path, jobs, serial_blobs
    ):
        """The full chaos schedule at once: one worker dies mid-job, one
        freezes (stops heartbeating) mid-sweep, and the broker is
        SIGKILL-bounced — output must still match serial exactly."""
        port = _free_port()
        journal_dir = str(tmp_path / "journal")
        state = {"broker": _spawn_broker(port, journal_dir), "bounced": False}
        workers = [
            _spawn_worker(port, extra_env={
                "REPRO_WORKER_DIE_AFTER_CHUNKS": "1"}),
            _spawn_worker(port, extra_env={
                "REPRO_WORKER_FREEZE_AFTER_CHUNKS": "2"}),
            _spawn_worker(port),
            _spawn_worker(port),
        ]

        def maybe_bounce(snapshot):
            if snapshot.done >= 1 and not state["bounced"]:
                state["bounced"] = True
                state["broker"].send_signal(signal.SIGKILL)
                state["broker"].wait(timeout=10)
                state["broker"] = _spawn_broker(port, journal_dir)

        runner = DistributedRunner(
            broker=f"127.0.0.1:{port}",
            progress=maybe_bounce,
            poll_timeout=POLL_TIMEOUT,
            reconnect_attempts=40,
            reconnect_delay=0.25,
        )
        try:
            results = runner.run(jobs)
            assert state["bounced"]
            assert workers[0].wait(timeout=60) == 86, "worker did not die"
            assert [pickle.dumps(r) for r in results] == serial_blobs
        finally:
            _reap(state["broker"], *workers)


class TestDriverReconnect:
    def test_driver_survives_broker_coming_up_late(self, tmp_path, jobs,
                                                   serial_blobs):
        """The driver's backoff also covers the broker not being there
        *yet*: start the sweep first, the cluster half a second later."""
        port = _free_port()
        journal_dir = str(tmp_path / "journal")
        procs = []

        def cluster_up():
            time.sleep(0.5)
            procs.append(_spawn_broker(port, journal_dir))
            procs.extend(_spawn_worker(port) for _ in range(2))

        starter = threading.Thread(target=cluster_up, daemon=True)
        runner = DistributedRunner(
            broker=f"127.0.0.1:{port}",
            poll_timeout=POLL_TIMEOUT,
            reconnect_attempts=40,
            reconnect_delay=0.25,
        )
        starter.start()
        try:
            results = runner.run(jobs[:2])
            assert [pickle.dumps(r) for r in results] == serial_blobs[:2]
        finally:
            starter.join(timeout=30)
            _reap(*procs)
