"""Chaos soak: real broker/worker processes under kill, freeze, and bounce.

The interleaving suite (`test_distrib_interleave.py`) proves the broker's
state machine correct one scripted ordering at a time; this file proves
the *deployed* stack — subprocesses, TCP, SIGKILL — converges to the same
bytes.  The headline scenario is the ISSUE's acceptance criterion: a
broker SIGKILLed mid-sweep and restarted on the same port (same journal
directory) must complete the sweep with output byte-identical to the
serial backend, the driver riding out the outage through
reconnect-with-backoff and the workers rejoining on their own.

The shaped-network classes cover the *degraded* (not severed) half of the
fault model: workers joining and heartbeating through a
:class:`~repro.distrib.shaping.ShapingProxy` with half-second latency,
jitter, and stutter freezes must never be falsely reaped, and a sweep
whose tail chunk lands on a pathologically slow worker must finish via a
hedged duplicate — byte-identical to serial in both cases.

Scale is 0.01 by default; the CI ``chaos-soak`` lane raises it via
``REPRO_CHAOS_SCALE=0.02`` for a longer mid-sweep window.
"""

import os
import pickle
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.distrib import DistributedRunner, LinkShape, ShapingProxy
from repro.experiments.config import ExperimentConfig
from repro.runner import JobSpec, ParallelRunner

POLL_TIMEOUT = 300.0
SCALE = float(os.environ.get("REPRO_CHAOS_SCALE", "0.01"))
SRC_ROOT = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(scale=SCALE, seed=7)


@pytest.fixture(scope="module")
def jobs(cfg):
    """Six independent conditions → six chunks: a real mid-sweep window."""
    return [
        JobSpec.from_config(cfg, scheme, "random", load)
        for scheme in ("adaptive", "static")
        for load in (0.3, 0.67, 0.9)
    ]


@pytest.fixture(scope="module")
def serial_blobs(jobs):
    return [pickle.dumps(r) for r in ParallelRunner(jobs=1).run(jobs)]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _await_port(port: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port), timeout=1.0).close()
            return
        except OSError:
            time.sleep(0.1)
    raise TimeoutError(f"nothing listening on 127.0.0.1:{port}")


def _spawn(*args: str, extra_env=None) -> subprocess.Popen:
    env = os.environ.copy()
    env["PYTHONPATH"] = (
        SRC_ROOT + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else SRC_ROOT
    )
    if extra_env:
        env.update(extra_env)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _spawn_broker(port: int, journal_dir: str) -> subprocess.Popen:
    proc = _spawn(
        "broker", "--listen", f"127.0.0.1:{port}",
        "--heartbeat-timeout", "5", "--journal-dir", journal_dir,
    )
    _await_port(port)
    return proc


def _spawn_worker(port: int, extra_env=None) -> subprocess.Popen:
    return _spawn(
        "worker", "--connect", f"127.0.0.1:{port}",
        "--heartbeat", "0.5", "--reconnects", "40",
        extra_env=extra_env,
    )


def _reap(*procs: subprocess.Popen) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            pass


class TestBrokerBounce:
    def test_sigkill_bounce_mid_sweep_is_byte_identical(
        self, tmp_path, jobs, serial_blobs
    ):
        """SIGKILL the broker after the first result; restart on the same
        port with the same journal; the sweep must finish byte-identical
        to serial with no job outcome lost or duplicated."""
        port = _free_port()
        journal_dir = str(tmp_path / "journal")
        state = {"broker": _spawn_broker(port, journal_dir), "bounced": False}
        workers = [_spawn_worker(port) for _ in range(2)]

        def maybe_bounce(snapshot):
            # runs in the driver's receive loop: by the time the next
            # recv() hits the dead socket, the replacement broker is
            # already listening on the same port with the same journal
            if snapshot.done >= 1 and not state["bounced"]:
                state["bounced"] = True
                state["broker"].send_signal(signal.SIGKILL)
                state["broker"].wait(timeout=10)
                state["broker"] = _spawn_broker(port, journal_dir)

        runner = DistributedRunner(
            broker=f"127.0.0.1:{port}",
            progress=maybe_bounce,
            poll_timeout=POLL_TIMEOUT,
            reconnect_attempts=40,
            reconnect_delay=0.25,
        )
        try:
            results = runner.run(jobs)
            assert state["bounced"], (
                "the sweep finished before any bounce was injected — "
                "the scenario did not exercise broker recovery"
            )
            assert [pickle.dumps(r) for r in results] == serial_blobs
        finally:
            _reap(state["broker"], *workers)

    def test_bounce_plus_worker_kill_and_freeze(
        self, tmp_path, jobs, serial_blobs
    ):
        """The full chaos schedule at once: one worker dies mid-job, one
        freezes (stops heartbeating) mid-sweep, and the broker is
        SIGKILL-bounced — output must still match serial exactly."""
        port = _free_port()
        journal_dir = str(tmp_path / "journal")
        state = {"broker": _spawn_broker(port, journal_dir), "bounced": False}
        workers = [
            _spawn_worker(port, extra_env={
                "REPRO_WORKER_DIE_AFTER_CHUNKS": "1"}),
            _spawn_worker(port, extra_env={
                "REPRO_WORKER_FREEZE_AFTER_CHUNKS": "2"}),
            _spawn_worker(port),
            _spawn_worker(port),
        ]

        def maybe_bounce(snapshot):
            if snapshot.done >= 1 and not state["bounced"]:
                state["bounced"] = True
                state["broker"].send_signal(signal.SIGKILL)
                state["broker"].wait(timeout=10)
                state["broker"] = _spawn_broker(port, journal_dir)

        runner = DistributedRunner(
            broker=f"127.0.0.1:{port}",
            progress=maybe_bounce,
            poll_timeout=POLL_TIMEOUT,
            reconnect_attempts=40,
            reconnect_delay=0.25,
        )
        try:
            results = runner.run(jobs)
            assert state["bounced"]
            assert workers[0].wait(timeout=60) == 86, "worker did not die"
            assert [pickle.dumps(r) for r in results] == serial_blobs
        finally:
            _reap(state["broker"], *workers)


class TestShapedNetwork:
    def test_shaped_links_no_false_deaths_byte_identical(
        self, tmp_path, jobs, serial_blobs
    ):
        """Workers joined through a 500 ms ± 200 ms link with 5% stutter
        freezes are *slow*, never *dead*: the sweep must complete with
        zero retries (a retry here could only come from a false-positive
        reap of a responsive worker) and byte-identical output."""
        port = _free_port()
        journal_dir = str(tmp_path / "journal")
        broker = _spawn_broker(port, journal_dir)
        shape = LinkShape(latency=0.5, jitter=0.2,
                          stutter_rate=0.05, stutter_duration=0.25)
        proxy = ShapingProxy(upstream=("127.0.0.1", port), shape=shape,
                             seed=42).start()
        workers = [_spawn_worker(proxy.address[1]) for _ in range(2)]
        runner = DistributedRunner(
            broker=f"127.0.0.1:{port}",  # only the workers ride the bad link
            poll_timeout=POLL_TIMEOUT,
            reconnect_attempts=40,
            reconnect_delay=0.25,
        )
        try:
            results = runner.run(jobs)
            assert [pickle.dumps(r) for r in results] == serial_blobs
            assert runner.retries_observed == 0, (
                "a shaped-but-responsive worker was reaped as dead"
            )
        finally:
            proxy.close()
            _reap(broker, *workers)

    def test_degraded_worker_tail_completes_via_hedge(
        self, jobs, serial_blobs
    ):
        """One worker 20×-degraded (3 s heartbeats against a 4 s timeout,
        20 s per chunk): the tail chunk it sits on must finish through a
        hedged duplicate on a healthy worker — not by waiting out the
        slow worker, not by declaring it dead."""
        runner = DistributedRunner(workers=3, heartbeat_interval=0.5,
                                   heartbeat_timeout=4.0,
                                   poll_timeout=POLL_TIMEOUT)
        try:
            # joins first => lowest worker id => first dispatch picks it
            runner.spawn_worker(extra_env={
                "REPRO_WORKER_FORCE_HEARTBEAT": "3.0",
                "REPRO_WORKER_SLOW_CHUNK_SECONDS": "20",
            })
            assert runner.wait_for_workers(1, timeout=60)
            runner.spawn_worker()
            runner.spawn_worker()
            assert runner.wait_for_workers(3, timeout=60)
            results = runner.run(jobs)
            assert [pickle.dumps(r) for r in results] == serial_blobs
            assert runner.hedges_observed >= 1, (
                "the sweep finished without hedging — the slow-worker "
                "tail scenario was not exercised"
            )
            assert runner.retries_observed == 0, (
                "a slow-but-alive worker was reaped (hedges must rescue "
                "the tail without any death/retry)"
            )
        finally:
            runner.close()


class TestDriverReconnect:
    def test_driver_survives_broker_coming_up_late(self, tmp_path, jobs,
                                                   serial_blobs):
        """The driver's backoff also covers the broker not being there
        *yet*: start the sweep first, the cluster half a second later."""
        port = _free_port()
        journal_dir = str(tmp_path / "journal")
        procs = []

        def cluster_up():
            time.sleep(0.5)
            procs.append(_spawn_broker(port, journal_dir))
            procs.extend(_spawn_worker(port) for _ in range(2))

        starter = threading.Thread(target=cluster_up, daemon=True)
        runner = DistributedRunner(
            broker=f"127.0.0.1:{port}",
            poll_timeout=POLL_TIMEOUT,
            reconnect_attempts=40,
            reconnect_delay=0.25,
        )
        starter.start()
        try:
            results = runner.run(jobs[:2])
            assert [pickle.dumps(r) for r in results] == serial_blobs[:2]
        finally:
            starter.join(timeout=30)
            _reap(*procs)
