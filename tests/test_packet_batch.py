"""PacketBatch round-trips and lazy batch-backed traces."""

import numpy as np
import pytest

from repro.net.addressing import ip_to_int
from repro.net.packet import Packet, PacketKind
from repro.traffic.batch import BATCH_COLUMNS, PacketBatch
from repro.traffic.synthetic import TraceConfig, generate_trace
from repro.traffic.trace import Trace


def sample_packets():
    return [
        Packet(src=ip_to_int("10.1.0.5"), dst=ip_to_int("10.2.0.9"), sport=1234,
               dport=80, proto=6, size=1500, ts=0.001),
        Packet(src=ip_to_int("10.1.0.6"), dst=ip_to_int("10.2.0.9"), sport=999,
               dport=53, proto=17, size=64, ts=0.002),
        Packet(src=ip_to_int("10.9.0.1"), dst=ip_to_int("10.10.0.1"), sport=5,
               dport=6, proto=6, size=600, ts=0.004, kind=PacketKind.CROSS),
    ]


def packet_fields(p):
    return (p.src, p.dst, p.sport, p.dport, p.proto, p.size, p.ts, p.kind)


class TestRoundTrip:
    def test_from_packets_to_packets_is_exact(self):
        packets = sample_packets()
        rebuilt = PacketBatch.from_packets(packets).to_packets()
        assert [packet_fields(p) for p in rebuilt] == [packet_fields(p) for p in packets]
        # plain Python scalars, fresh bookkeeping
        for p in rebuilt:
            assert type(p.src) is int and type(p.ts) is float
            assert p.tap_time is None and not p.dropped and p.hops == 0

    def test_single_packet_materialization(self):
        batch = PacketBatch.from_packets(sample_packets())
        assert packet_fields(batch.packet(1)) == packet_fields(sample_packets()[1])

    def test_summary_stats_match_object_computations(self):
        packets = sample_packets()
        batch = PacketBatch.from_packets(packets)
        assert len(batch) == len(packets)
        assert batch.total_bytes == sum(p.size for p in packets)
        assert batch.duration == packets[-1].ts
        assert batch.n_flows == len({p.flow_key for p in packets})

    def test_flow_key_matches_packet(self):
        batch = PacketBatch.from_packets(sample_packets())
        for i, p in enumerate(sample_packets()):
            assert batch.flow_key(i) == p.flow_key

    def test_take_replace_with_kind(self):
        batch = PacketBatch.from_packets(sample_packets())
        sub = batch.take(np.array([2, 0]))
        assert sub.size.tolist() == [600, 1500]
        crossed = batch.with_kind(PacketKind.CROSS)
        assert set(crossed.kind.tolist()) == {int(PacketKind.CROSS)}
        assert batch.kind.tolist()[0] == int(PacketKind.REGULAR)  # original untouched
        swapped = batch.replace(ts=batch.ts + 1.0)
        assert swapped.ts[0] == batch.ts[0] + 1.0
        with pytest.raises(ValueError):
            batch.replace(nonsense=batch.ts)

    def test_concat_and_empty(self):
        batch = PacketBatch.from_packets(sample_packets())
        both = PacketBatch.concat([batch, batch])
        assert len(both) == 2 * len(batch)
        assert len(PacketBatch.concat([])) == 0
        assert len(PacketBatch.empty()) == 0

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            PacketBatch(src=[1], dst=[1, 2], sport=[0], dport=[0], proto=[6],
                        size=[64], ts=[0.0], kind=[0])


class TestBatchBackedTrace:
    def test_generate_trace_is_batch_backed_and_lazy(self):
        trace = generate_trace(TraceConfig(duration=0.2, n_packets=500), seed=1)
        assert trace.has_batch
        assert trace._packets is None  # nothing materialized yet
        n = len(trace)  # length readable without materializing
        assert trace._packets is None
        packets = trace.packets
        assert len(packets) == n

    def test_materialized_equals_batch_columns(self):
        trace = generate_trace(TraceConfig(duration=0.2, n_packets=400), seed=3)
        batch = trace.batch
        for i, p in enumerate(trace.packets):
            assert packet_fields(p)[:7] == (
                int(batch.src[i]), int(batch.dst[i]), int(batch.sport[i]),
                int(batch.dport[i]), int(batch.proto[i]), int(batch.size[i]),
                float(batch.ts[i]),
            )
            assert p.kind == PacketKind.REGULAR

    def test_stats_agree_between_representations(self):
        trace = generate_trace(TraceConfig(duration=0.2, n_packets=400), seed=5)
        object_trace = Trace(trace.batch.to_packets(), name="obj", check_sorted=False)
        assert len(trace) == len(object_trace)
        assert trace.duration == object_trace.duration
        assert trace.total_bytes == object_trace.total_bytes
        assert trace.n_flows == object_trace.n_flows

    def test_packet_list_trace_builds_batch_lazily(self):
        trace = Trace(sample_packets(), check_sorted=False)
        assert not trace.has_batch
        batch = trace.batch
        assert trace.has_batch and len(batch) == 3

    def test_unsorted_batch_rejected(self):
        batch = PacketBatch.from_packets(list(reversed(sample_packets())))
        with pytest.raises(ValueError):
            Trace(batch=batch)
        Trace(batch=batch, check_sorted=False)  # explicit opt-out still works

    def test_empty_trace_needs_something(self):
        with pytest.raises(ValueError):
            Trace()

    def test_save_load_round_trip(self, tmp_path):
        trace = generate_trace(TraceConfig(duration=0.2, n_packets=300), seed=9)
        path = str(tmp_path / "t.npz")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.has_batch  # load stays columnar
        assert [packet_fields(p) for p in loaded.packets] == \
            [packet_fields(p) for p in trace.packets]
        assert loaded.name == trace.name

    def test_save_from_packet_list_matches_batch_save(self, tmp_path):
        trace = generate_trace(TraceConfig(duration=0.2, n_packets=200), seed=11)
        object_trace = Trace(trace.batch.to_packets(), name=trace.name,
                             check_sorted=False)
        p1, p2 = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        trace.save(p1)
        object_trace.save(p2)
        a, b = Trace.load(p1), Trace.load(p2)
        for col in BATCH_COLUMNS:
            assert np.array_equal(getattr(a.batch, col), getattr(b.batch, col))


class TestFlowKeyCache:
    def test_flow_key_cached_and_reset_on_clone(self):
        p = sample_packets()[0]
        first = p.flow_key
        assert p.flow_key is first  # same tuple object: computed once
        q = p.clone()
        assert q._flow_key is None  # clone starts with a cold cache
        assert q.flow_key == first
