"""Tests for the deterministic link shaper (`repro.distrib.shaping`).

Unit layer: the scheduler's delay arithmetic (latency, jitter bounds,
bandwidth serialization, stutter watermarks), the reorder buffer's
displacement bound, and the frame parser — all pure, no sockets, driven
with synthetic clocks.  Integration layer: a real ``ShapingProxy`` in
front of a ``multiprocessing.connection`` echo server (the handshake must
survive shaping) and in front of a real broker, where the satellite
regression lives: a worker joining over a 1-second-latency link is a slow
join, not a failed one.
"""

import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
from multiprocessing.connection import Client, Listener
from pathlib import Path

import pytest

from repro.distrib import Broker, DistributedRunner, LinkShape, ShapingProxy
from repro.distrib.protocol import authkey_from_env, format_address
from repro.distrib.shaping import LinkScheduler, ReorderBuffer, read_frame
from repro.experiments.config import ExperimentConfig
from repro.runner import JobSpec, ParallelRunner

POLL_TIMEOUT = 300.0  # driver watchdog: generous for slow CI boxes


# ----------------------------------------------------------------------
# unit: LinkScheduler arithmetic


class TestLinkScheduler:
    def test_unshaped_link_is_free(self):
        sched = LinkScheduler(LinkShape(), seed=0)
        assert [sched.delay(float(t), 1000) for t in range(5)] == [0.0] * 5

    def test_fixed_latency(self):
        sched = LinkScheduler(LinkShape(latency=0.5), seed=0)
        assert sched.delay(0.0, 100) == pytest.approx(0.5)
        assert sched.delay(7.0, 100) == pytest.approx(0.5)

    def test_jitter_bounded_and_seeded(self):
        shape = LinkShape(latency=0.5, jitter=0.2)
        a = LinkScheduler(shape, seed=7)
        b = LinkScheduler(shape, seed=7)
        other = LinkScheduler(shape, seed=8)
        draws_a = [a.delay(0.0, 64) for _ in range(20)]
        draws_b = [b.delay(0.0, 64) for _ in range(20)]
        draws_other = [other.delay(0.0, 64) for _ in range(20)]
        assert draws_a == draws_b  # same seed, same schedule
        assert draws_a != draws_other
        for delay in draws_a:
            assert 0.3 <= delay <= 0.7  # latency ± jitter, link idle

    def test_throttle_serializes_back_to_back_frames(self):
        # 1000 B/s link, three 500 B frames handed over at t=0: the wire
        # is busy 0.5 s per frame, so delivery completes at 0.5/1.0/1.5
        sched = LinkScheduler(LinkShape(bandwidth=1000.0), seed=0)
        assert sched.delay(0.0, 500) == pytest.approx(0.5)
        assert sched.delay(0.0, 500) == pytest.approx(1.0)
        assert sched.delay(0.0, 500) == pytest.approx(1.5)

    def test_throttle_idle_gap_resets_queueing(self):
        sched = LinkScheduler(LinkShape(bandwidth=1000.0), seed=0)
        assert sched.delay(0.0, 500) == pytest.approx(0.5)
        # handed over after the wire drained: no queueing delay
        assert sched.delay(10.0, 500) == pytest.approx(0.5)

    def test_stutter_freezes_the_link_not_just_one_message(self):
        # rate 1.0 => every message stalls; the second message queues
        # behind the first one's freeze *and* adds its own
        shape = LinkShape(stutter_rate=1.0, stutter_duration=0.25)
        sched = LinkScheduler(shape, seed=0)
        assert sched.delay(0.0, 10) == pytest.approx(0.25)
        assert sched.delay(0.0, 10) == pytest.approx(0.5)


# ----------------------------------------------------------------------
# unit: ReorderBuffer


class TestReorderBuffer:
    def test_window_zero_is_exact_fifo_for_any_seed(self):
        frames = [bytes([i]) for i in range(10)]
        for seed in (0, 1, 99):
            buf = ReorderBuffer(window=0, seed=seed)
            for frame in frames:
                buf.push(frame)
            assert [buf.pop() for _ in frames] == frames

    def test_displacement_never_exceeds_window(self):
        window = 3
        frames = [struct.pack("!I", i) for i in range(50)]
        for seed in range(5):
            buf = ReorderBuffer(window=window, seed=seed)
            for frame in frames:
                buf.push(frame)
            out = [buf.pop() for _ in frames]
            assert sorted(out) == sorted(frames)  # nothing lost or duped
            for out_pos, frame in enumerate(out):
                (in_pos,) = struct.unpack("!I", frame)
                assert abs(out_pos - in_pos) <= window, (
                    f"seed {seed}: frame {in_pos} displaced to {out_pos}"
                )

    def test_same_seed_same_order_and_reordering_happens(self):
        frames = [bytes([i]) for i in range(30)]

        def drain(seed):
            buf = ReorderBuffer(window=2, seed=seed)
            for frame in frames:
                buf.push(frame)
            return [buf.pop() for _ in frames]

        assert drain(5) == drain(5)
        # over 30 frames with window 2 the draw leaves FIFO order for
        # some seed; pin one where it demonstrably does
        assert any(drain(seed) != frames for seed in range(5))


# ----------------------------------------------------------------------
# unit: frame parser


def _pair():
    left, right = socket.socketpair()
    return left, right


class TestReadFrame:
    def test_small_frame_roundtrips_header_included(self):
        left, right = _pair()
        try:
            payload = b"hello"
            left.sendall(struct.pack("!i", len(payload)) + payload)
            frame = read_frame(right)
            assert frame == struct.pack("!i", len(payload)) + payload
        finally:
            left.close()
            right.close()

    def test_zero_length_frame(self):
        left, right = _pair()
        try:
            left.sendall(struct.pack("!i", 0))
            assert read_frame(right) == struct.pack("!i", 0)
        finally:
            left.close()
            right.close()

    def test_large_frame_sentinel(self):
        left, right = _pair()
        try:
            payload = b"x" * 2048
            wire = struct.pack("!i", -1) + struct.pack("!Q", len(payload)) + payload
            sender = threading.Thread(target=left.sendall, args=(wire,))
            sender.start()
            assert read_frame(right) == wire
            sender.join()
        finally:
            left.close()
            right.close()

    def test_eof_returns_none(self):
        left, right = _pair()
        left.close()
        try:
            assert read_frame(right) is None
        finally:
            right.close()

    def test_truncated_frame_returns_none(self):
        left, right = _pair()
        try:
            left.sendall(struct.pack("!i", 100) + b"only-some")
            left.close()
            assert read_frame(right) is None
        finally:
            right.close()


# ----------------------------------------------------------------------
# integration: proxy in front of a Connection echo server


def _echo_server(authkey):
    """A Listener echoing every object once; returns (listener, thread)."""
    listener = Listener(("127.0.0.1", 0), authkey=authkey)

    def serve():
        try:
            conn = listener.accept()
        except (OSError, EOFError):
            return
        with conn:
            while True:
                try:
                    conn.send(conn.recv())
                except (EOFError, OSError):
                    return

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return listener, thread


class TestShapingProxyEndToEnd:
    def test_handshake_and_messages_survive_shaping(self):
        authkey = b"shape-test"
        listener, thread = _echo_server(authkey)
        shape = LinkShape(latency=0.01, jitter=0.005,
                          stutter_rate=0.2, stutter_duration=0.02)
        with ShapingProxy(upstream=listener.address[:2], shape=shape,
                          seed=3) as proxy:
            with Client(proxy.address, authkey=authkey) as conn:
                payloads = [{"i": i, "blob": os.urandom(64)} for i in range(5)]
                for payload in payloads:
                    conn.send(payload)
                    assert conn.recv() == payload  # intact and in order
        listener.close()
        thread.join(timeout=5)

    def test_proxy_is_transparent_when_unshaped(self):
        authkey = b"shape-test"
        listener, thread = _echo_server(authkey)
        with ShapingProxy(upstream=listener.address[:2]) as proxy:
            with Client(proxy.address, authkey=authkey) as conn:
                big = list(range(50_000))  # exercises the !Q large-frame path
                conn.send(big)
                assert conn.recv() == big
        listener.close()
        thread.join(timeout=5)

    def test_upstream_down_closes_client_cleanly(self):
        # grab a port nothing listens on
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead = probe.getsockname()[:2]
        probe.close()
        with ShapingProxy(upstream=dead) as proxy:
            with pytest.raises((EOFError, OSError)):
                with Client(proxy.address, authkey=b"k") as conn:
                    conn.recv()


# ----------------------------------------------------------------------
# integration: slow links against the real cluster


def _spawn_worker_at(address, heartbeat=1.0):
    package_root = str(Path(__file__).resolve().parent.parent / "src")
    env = os.environ.copy()
    env["PYTHONPATH"] = (
        package_root + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else package_root
    )
    env["REPRO_DISTRIB_AUTHKEY"] = authkey_from_env().decode()
    env.setdefault("REPRO_WORKER_LOG_PREFIX", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", format_address(address),
         "--heartbeat", str(heartbeat), "--reconnects", "40"],
        env=env, stderr=subprocess.DEVNULL,
    )


class TestSlowJoin:
    def test_one_second_latency_join_is_slow_not_failed(self):
        """The satellite regression: a worker whose handshake crawls over
        a 1 s-each-way link must still count as joined — the old code
        paths that treated a slow join as a partial join turned pure
        latency into a hard failure."""
        cfg = ExperimentConfig(scale=0.01, seed=7)
        jobs = [JobSpec.from_config(cfg, "adaptive", "random", 0.67)]
        serial_blobs = [pickle.dumps(r) for r in ParallelRunner(jobs=1).run(jobs)]

        broker = Broker(address=("127.0.0.1", 0)).start()
        proxy = ShapingProxy(upstream=broker.address,
                             shape=LinkShape(latency=1.0), seed=11).start()
        worker = None
        runner = None
        try:
            worker = _spawn_worker_at(proxy.address)
            assert broker.wait_for_workers(1, timeout=30), (
                "worker behind a 1 s link never counted as joined"
            )
            runner = DistributedRunner(broker=format_address(broker.address),
                                       poll_timeout=POLL_TIMEOUT)
            results = runner.run(jobs)
            assert [pickle.dumps(r) for r in results] == serial_blobs
        finally:
            if worker is not None:
                worker.terminate()
                worker.wait(timeout=10)
            if runner is not None:
                runner.close()
            proxy.close()
            broker.close()

    def test_worker_gives_up_when_broker_never_appears(self):
        """First-connect failures retry with backoff, then exit 2 (never
        joined) — distinct from exit 0 after a clean broker shutdown."""
        from repro.distrib.worker import worker_main

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead = probe.getsockname()[:2]
        probe.close()
        assert worker_main(connect=format_address(dead), reconnects=1) == 2
