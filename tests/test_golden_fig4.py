"""Golden regression test: Figure 4(a)/4(b) numbers are frozen.

The summary rows of the four Figure-4(a,b) curves at the golden scale/seed
are checked in as JSON and asserted for *exact* equality — the simulation
is bit-deterministic, so any drift means a code change altered the
reproduction's numbers.  If the change was intentional, regenerate with
``PYTHONPATH=src python tests/make_golden.py`` and commit the new fixture
with an explanation; if not, you just caught a silent accuracy shift.
"""

import json

import pytest

from make_golden import GOLDEN_DIR, GOLDEN_SCALE, GOLDEN_SEED, compute_fig4ab

FIXTURE = GOLDEN_DIR / f"fig4ab_scale{GOLDEN_SCALE}_seed{GOLDEN_SEED}.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def current():
    return compute_fig4ab()


def test_fixture_matches_golden_parameters(golden):
    assert golden["scale"] == GOLDEN_SCALE
    assert golden["seed"] == GOLDEN_SEED


def test_curve_labels_frozen(golden, current):
    assert [c["label"] for c in current["curves"]] == \
        [c["label"] for c in golden["curves"]]


def test_summary_rows_exactly_match(golden, current):
    for got, want in zip(current["curves"], golden["curves"]):
        assert got["row"] == want["row"], (
            f"{want['label']}: reproduction numbers shifted — if intentional, "
            f"regenerate tests/golden/ via tests/make_golden.py"
        )


def test_batch_fast_path_reproduces_the_golden_rows(golden):
    """The columnar pipeline must hit the per-object fixtures bit-for-bit."""
    batched = compute_fig4ab(batch=True)
    assert [c["label"] for c in batched["curves"]] == \
        [c["label"] for c in golden["curves"]]
    for got, want in zip(batched["curves"], golden["curves"]):
        assert got["row"] == want["row"], (
            f"{want['label']}: batch pipeline diverged from the golden "
            f"(object-path) numbers — the fast path must be bitwise-identical"
        )
