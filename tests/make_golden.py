"""Regenerate the golden fixtures under ``tests/golden/``.

Usage (from the repo root)::

    PYTHONPATH=src python tests/make_golden.py

Only run this when an *intentional* change shifts the reproduction numbers
(a new estimator default, a recalibrated workload, …) — the golden tests
exist precisely so refactors that should NOT move the numbers (like sweep
parallelization) can prove they didn't.  Commit the regenerated JSON
together with the change that moved the numbers and say why in the commit.
"""

import json
import pathlib
import sys

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

# tiny but non-degenerate: ~2k regular packets, full condition grids
GOLDEN_SCALE = 0.01
GOLDEN_SEED = 7
GOLDEN_FIG5_SEEDS = 2


def golden_config():
    from repro.experiments.config import ExperimentConfig

    return ExperimentConfig(scale=GOLDEN_SCALE, seed=GOLDEN_SEED)


def compute_fig4ab(batch=False):
    """Figure 4(a)/4(b) summary rows (strings/ints, exact).

    ``batch=True`` drives the same grid through the columnar pipeline fast
    path; the golden tests assert it reproduces the fixture bit-for-bit
    (the fixtures themselves are always regenerated on the reference
    per-object path).
    """
    from repro.experiments.fig4 import run_fig4ab

    return {
        "scale": GOLDEN_SCALE,
        "seed": GOLDEN_SEED,
        "curves": [
            {"label": c.label, "row": c.summary_row()}
            for c in run_fig4ab(golden_config(), batch=batch)
        ],
    }


def compute_fig5(batch=False):
    """Figure 5 rows (raw floats — simulation is bit-deterministic)."""
    from repro.experiments.fig5 import run_fig5

    return {
        "scale": GOLDEN_SCALE,
        "seed": GOLDEN_SEED,
        "n_seeds": GOLDEN_FIG5_SEEDS,
        "rows": [
            {
                "target_util": r.target_util,
                "measured_util": r.measured_util,
                "baseline_loss": r.baseline_loss,
                "static_loss": r.static_loss,
                "adaptive_loss": r.adaptive_loss,
                "static_refs": r.static_refs,
                "adaptive_refs": r.adaptive_refs,
            }
            for r in run_fig5(golden_config(), n_seeds=GOLDEN_FIG5_SEEDS, batch=batch)
        ],
    }


def main() -> int:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, compute in (("fig4ab", compute_fig4ab), ("fig5", compute_fig5)):
        path = GOLDEN_DIR / f"{name}_scale{GOLDEN_SCALE}_seed{GOLDEN_SEED}.json"
        path.write_text(json.dumps(compute(), indent=2) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
