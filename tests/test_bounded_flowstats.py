"""Tests for the memory-bounded flow table and its receiver integration."""

import pytest

from repro.core.demux import SingleSenderDemux
from repro.core.flowstats import BoundedFlowStatsTable
from repro.core.receiver import RliReceiver


def key(i):
    return (i, 2, 3, 4, 6)


class TestBoundedTable:
    def test_never_exceeds_bound(self):
        t = BoundedFlowStatsTable(max_flows=10)
        for i in range(100):
            t.add(key(i), 1.0)
        assert len(t) == 10

    def test_lru_eviction_order(self):
        t = BoundedFlowStatsTable(max_flows=2)
        t.add(key(1), 1.0)
        t.add(key(2), 1.0)
        t.add(key(1), 2.0)  # refresh 1; 2 becomes least recent
        t.add(key(3), 1.0)  # evicts 2
        assert key(1) in t and key(3) in t and key(2) not in t

    def test_eviction_counters(self):
        t = BoundedFlowStatsTable(max_flows=1)
        t.add(key(1), 1.0)
        t.add(key(1), 2.0)
        t.add(key(2), 1.0)  # evicts flow 1 with 2 samples
        assert t.evicted_flows == 1
        assert t.evicted_samples == 2

    def test_stats_correct_for_survivors(self):
        t = BoundedFlowStatsTable(max_flows=5)
        for v in (1.0, 3.0):
            t.add(key(1), v)
        assert t.get(key(1)).mean == 2.0

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            BoundedFlowStatsTable(0)

    def test_total_samples_counts_survivors_only(self):
        t = BoundedFlowStatsTable(max_flows=1)
        t.add(key(1), 1.0)
        t.add(key(2), 1.0)
        assert t.total_samples() == 1


class TestReceiverIntegration:
    def test_receiver_tables_bounded(self):
        rx = RliReceiver(SingleSenderDemux(1), max_flows=4)
        assert isinstance(rx.flow_estimated, BoundedFlowStatsTable)
        assert isinstance(rx.flow_true, BoundedFlowStatsTable)

    def test_unbounded_by_default(self):
        rx = RliReceiver(SingleSenderDemux(1))
        assert not isinstance(rx.flow_true, BoundedFlowStatsTable)
