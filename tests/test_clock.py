"""Tests for measurement-instance clock models."""

import pytest

from repro.sim.clock import DriftingClock, OffsetClock, PerfectClock


class TestClocks:
    def test_perfect(self):
        assert PerfectClock().now(1.5) == 1.5

    def test_offset(self):
        assert OffsetClock(2e-6).now(1.0) == pytest.approx(1.0 + 2e-6)
        assert OffsetClock(-1e-6).now(1.0) == pytest.approx(1.0 - 1e-6)

    def test_offset_biases_delay_samples(self):
        """A receiver offset o biases every measured delay by +o."""
        sender, receiver = PerfectClock(), OffsetClock(5e-6)
        tx = sender.now(0.0)
        rx = receiver.now(100e-6)
        assert rx - tx == pytest.approx(105e-6)

    def test_drift_accumulates(self):
        c = DriftingClock(drift_ppm=10.0)
        assert c.now(0.0) == 0.0
        assert c.now(1.0) == pytest.approx(1.0 + 10e-6)
        assert c.now(2.0) == pytest.approx(2.0 + 20e-6)

    def test_drift_plus_offset(self):
        c = DriftingClock(offset=1e-6, drift_ppm=1.0)
        assert c.now(1.0) == pytest.approx(1.0 + 1e-6 + 1e-6)

    def test_jitter_is_seeded(self):
        a = DriftingClock(jitter_std=1e-6, seed=3)
        b = DriftingClock(jitter_std=1e-6, seed=3)
        assert [a.now(t) for t in (0.0, 1.0)] == [b.now(t) for t in (0.0, 1.0)]

    def test_jitter_perturbs(self):
        c = DriftingClock(jitter_std=1e-6, seed=3)
        assert c.now(1.0) != 1.0

    def test_no_jitter_is_deterministic_function(self):
        c = DriftingClock(offset=1e-6)
        assert c.now(1.0) == c.now(1.0)
