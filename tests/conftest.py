"""Shared fixtures: tiny-scale workloads and small topologies."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import PipelineWorkload
from repro.sim.topology import FatTree, LinkParams
from repro.traffic.synthetic import TraceConfig, generate_trace


@pytest.fixture(scope="session")
def tiny_config():
    """~2k regular packets: fast enough for every test."""
    return ExperimentConfig(scale=0.01, seed=7)


@pytest.fixture(scope="session")
def tiny_workload(tiny_config):
    return PipelineWorkload(tiny_config)


@pytest.fixture(scope="session")
def small_trace():
    cfg = TraceConfig(duration=0.5, n_packets=3000, mean_flow_pkts=10.0)
    return generate_trace(cfg, seed=3, name="small")


@pytest.fixture()
def fattree4():
    return FatTree(4, LinkParams(rate_bps=1e9, buffer_bytes=256 * 1024))


@pytest.fixture()
def fattree8():
    return FatTree(8, LinkParams(rate_bps=1e9, buffer_bytes=256 * 1024))
