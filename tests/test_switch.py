"""Tests for the output-queued switch: routing, ECMP, marking, taps."""

import pytest

from repro.net.addressing import Prefix, ip_to_int
from repro.net.headers import decode_mark
from repro.net.packet import Packet
from repro.sim.ecmp import EcmpHasher
from repro.sim.switch import EcmpGroup, LOCAL_DELIVERY, Switch


def make_switch(name="sw", mark=0):
    return Switch(name, 0, ip_to_int("10.0.0.1"), EcmpHasher(seed=1), mark=mark)


def pkt(dst, src="10.5.0.1", sport=1, dport=2):
    return Packet(src=ip_to_int(src), dst=ip_to_int(dst), sport=sport, dport=dport, size=100)


class TestRouting:
    def test_single_port_route(self):
        sw = make_switch()
        sw.add_port(8e6, None)
        sw.add_route(Prefix.parse("10.1.0.0/16"), 0)
        assert sw.route_port(pkt("10.1.2.3")) == 0

    def test_longest_prefix_wins(self):
        sw = make_switch()
        sw.add_port(8e6, None)
        sw.add_port(8e6, None)
        sw.add_route(Prefix.parse("10.0.0.0/8"), 0)
        sw.add_route(Prefix.parse("10.1.0.0/16"), 1)
        assert sw.route_port(pkt("10.1.2.3")) == 1
        assert sw.route_port(pkt("10.2.2.3")) == 0

    def test_own_address_delivers_locally(self):
        sw = make_switch()
        assert sw.route_port(pkt("10.0.0.1")) is LOCAL_DELIVERY

    def test_no_route_returns_none(self):
        sw = make_switch()
        assert sw.route_port(pkt("99.0.0.1")) is None

    def test_ecmp_group_resolved_by_hash(self):
        sw = make_switch()
        for _ in range(4):
            sw.add_port(8e6, None)
        sw.add_route(Prefix(0, 0), EcmpGroup([0, 1, 2, 3]))
        p = pkt("11.0.0.1")
        expected = sw.hasher.choose(p.flow_key, 4)
        assert sw.route_port(p) == expected

    def test_ecmp_group_requires_ports(self):
        with pytest.raises(ValueError):
            EcmpGroup([])


class TestReceive:
    def test_forwarding_returns_port_and_departure(self):
        sw = make_switch()
        sw.add_port(8e6, None)
        sw.add_route(Prefix(0, 0), 0)
        result = sw.receive(pkt("11.0.0.1"), 1.0)
        assert result is not None
        port, dep = result
        assert port.index == 0
        assert dep == pytest.approx(1.0 + 100 / 1e6)

    def test_local_delivery_lands_in_sink(self):
        sw = make_switch()
        p = pkt("10.0.0.1")
        assert sw.receive(p, 2.0) is None
        assert sw.local_sink == [(p, 2.0)]

    def test_unroutable_marked_dropped(self):
        sw = make_switch()
        p = pkt("99.0.0.1")
        assert sw.receive(p, 0.0) is None
        assert p.dropped

    def test_buffer_overflow_returns_none(self):
        sw = make_switch()
        sw.add_port(8e6, 150)
        sw.add_route(Prefix(0, 0), 0)
        assert sw.receive(pkt("11.0.0.1"), 0.0) is not None
        p = pkt("11.0.0.1")
        assert sw.receive(p, 0.0) is None
        assert p.dropped

    def test_path_recorded(self):
        sw = make_switch()
        p = pkt("10.0.0.1")
        sw.receive(p, 0.0)
        assert p.path == (0,)


class TestMarkingAndTaps:
    def test_marking_switch_stamps_tos(self):
        sw = make_switch(mark=9)
        sw.add_port(8e6, None)
        sw.add_route(Prefix(0, 0), 0)
        p = pkt("11.0.0.1")
        sw.receive(p, 0.0)
        assert decode_mark(p.tos) == 9

    def test_local_delivery_not_marked(self):
        sw = make_switch(mark=9)
        p = pkt("10.0.0.1")
        sw.receive(p, 0.0)
        assert decode_mark(p.tos) == 0

    def test_arrival_tap_sees_every_packet(self):
        sw = make_switch()
        sw.add_port(8e6, None)
        sw.add_route(Prefix(0, 0), 0)
        seen = []
        sw.add_arrival_tap(lambda p, t, i: seen.append((p, t, i)))
        p1, p2 = pkt("11.0.0.1"), pkt("10.0.0.1")
        sw.receive(p1, 1.0, in_port=3)
        sw.receive(p2, 2.0)
        assert seen == [(p1, 1.0, 3), (p2, 2.0, -1)]

    def test_enqueue_tap_fires_only_for_accepted(self):
        sw = make_switch()
        sw.add_port(8e6, 150)
        sw.add_route(Prefix(0, 0), 0)
        seen = []
        sw.ports[0].add_enqueue_tap(lambda p, t: seen.append(p))
        a, b = pkt("11.0.0.1"), pkt("11.0.0.1")
        sw.receive(a, 0.0)
        sw.receive(b, 0.0)  # dropped
        assert seen == [a]

    def test_injected_packet_queues_behind_tap_trigger(self):
        """A reference injected from an enqueue tap departs after the
        packet that triggered it (the 1-and-n semantics)."""
        sw = make_switch()
        sw.add_port(8e6, None)
        sw.add_route(Prefix(0, 0), 0)
        departures = {}

        def tap(p, t):
            if p.size == 100:  # the regular packet
                ref = Packet(src=1, dst=2, size=64)
                result = sw.inject(ref, t, 0)
                departures["ref"] = result[1]

        sw.ports[0].add_enqueue_tap(tap)
        _, dep_regular = sw.receive(pkt("11.0.0.1"), 0.0)
        assert departures["ref"] > dep_regular

    def test_depart_tap_gets_departure_time(self):
        sw = make_switch()
        sw.add_port(8e6, None)
        sw.add_route(Prefix(0, 0), 0)
        seen = []
        sw.ports[0].add_depart_tap(lambda p, t: seen.append(t))
        _, dep = sw.receive(pkt("11.0.0.1"), 0.0)
        assert seen == [dep]
