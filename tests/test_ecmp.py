"""Tests for ECMP hashing and reference-flow crafting."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.ecmp import EcmpHasher, craft_dport_for_port

KEY = (0x0A010203, 0x0A020304, 1234, 80, 6)


class TestHasher:
    def test_deterministic(self):
        h = EcmpHasher(seed=1)
        assert h.hash_key(KEY) == h.hash_key(KEY)
        assert h.choose(KEY, 4) == h.choose(KEY, 4)

    def test_seed_changes_choice_distribution(self):
        keys = [(s, d, sp, dp, 6) for s in range(20) for d in range(5)
                for sp, dp in [(1, 2)]]
        a = [EcmpHasher(seed=1).choose(k, 4) for k in keys]
        b = [EcmpHasher(seed=2).choose(k, 4) for k in keys]
        assert a != b  # different salts, different placements

    def test_single_port_shortcut(self):
        assert EcmpHasher(seed=1).choose(KEY, 1) == 0

    def test_invalid_ports(self):
        with pytest.raises(ValueError):
            EcmpHasher(seed=1).choose(KEY, 0)

    def test_field_subset(self):
        h = EcmpHasher(seed=1, fields=EcmpHasher.ADDRESS_PAIR)
        base = h.choose(KEY, 8)
        # ports don't participate: same choice whatever the ports are
        assert h.choose((KEY[0], KEY[1], 9999, 1, 6), 8) == base

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            EcmpHasher(seed=1, fields=("src", "ttl"))

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError):
            EcmpHasher(seed=1, fields=())

    def test_spread_is_roughly_uniform(self):
        """With many flows, each of 4 ports gets 15-35% of the flows."""
        h = EcmpHasher(seed=3)
        counts = [0, 0, 0, 0]
        for sport in range(2000):
            counts[h.choose((KEY[0], KEY[1], sport, 80, 6), 4)] += 1
        for c in counts:
            assert 0.15 * 2000 < c < 0.35 * 2000

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=2, max_value=64))
    def test_choice_in_range(self, src, n_ports):
        h = EcmpHasher(seed=5)
        assert 0 <= h.choose((src, 1, 2, 3, 6), n_ports) < n_ports


class TestCrafting:
    @pytest.mark.parametrize("target", [0, 1, 2, 3])
    def test_crafted_flow_hits_target_port(self, target):
        h = EcmpHasher(seed=9)
        dport = craft_dport_for_port(h, 1, 2, 0, 253, 4, target)
        assert dport is not None
        assert h.choose((1, 2, 0, dport, 253), 4) == target

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            craft_dport_for_port(EcmpHasher(seed=1), 1, 2, 0, 6, 4, 4)

    def test_dport_excluded_from_hash(self):
        """If dport isn't hashed, crafting can only succeed by luck."""
        h = EcmpHasher(seed=1, fields=EcmpHasher.ADDRESS_PAIR)
        fixed_choice = h.choose((1, 2, 0, 40000, 253), 4)
        hit = craft_dport_for_port(h, 1, 2, 0, 253, 4, fixed_choice)
        miss = craft_dport_for_port(h, 1, 2, 0, 253, 4, (fixed_choice + 1) % 4)
        assert hit == 40000
        assert miss is None

    def test_all_ports_coverable(self):
        """A sender can craft one reference flow per equal-cost path."""
        h = EcmpHasher(seed=11)
        ports = {craft_dport_for_port(h, 7, 8, 0, 253, 8, t) for t in range(8)}
        assert None not in ports
        assert len(ports) == 8  # distinct dports
