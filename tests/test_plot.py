"""Tests for terminal plotting."""

import pytest

from repro.analysis.cdf import Ecdf
from repro.analysis.plot import ascii_cdf, ascii_series


class TestAsciiCdf:
    def cdfs(self):
        return {
            "fast": Ecdf([0.01 * (i + 1) for i in range(100)]),
            "slow": Ecdf([0.1 * (i + 1) for i in range(100)]),
        }

    def test_contains_legend_and_axis(self):
        out = ascii_cdf(self.cdfs())
        assert "* = fast" in out
        assert "o = slow" in out
        assert "relative error (log)" in out

    def test_grid_dimensions(self):
        out = ascii_cdf(self.cdfs(), width=40, height=10)
        plot_lines = [l for l in out.splitlines() if "|" in l]
        assert len(plot_lines) == 10
        for line in plot_lines:
            assert len(line.split("|", 1)[1]) == 40

    def test_dominance_visible(self):
        """The stochastically-smaller series sits above the other: at any
        x, its plotted fraction is >= the slower one's."""
        cdfs = self.cdfs()
        for x in (0.05, 0.5, 1.0):
            assert cdfs["fast"].fraction_below(x) >= cdfs["slow"].fraction_below(x)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf({})

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf(self.cdfs(), width=2, height=2)


class TestAsciiSeries:
    def test_renders_points_and_legend(self):
        out = ascii_series({"a": [(0.8, 0.0), (0.9, 1e-4)],
                            "b": [(0.8, 1e-4), (0.9, 5e-4)]},
                           x_label="util")
        assert "* = a" in out and "o = b" in out
        assert "util" in out

    def test_degenerate_ranges_handled(self):
        out = ascii_series({"flat": [(1.0, 2.0), (1.0, 2.0)]})
        assert "flat" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_series({})
        with pytest.raises(ValueError):
            ascii_series({"a": []})
