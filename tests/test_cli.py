"""Tests for the repro-rlir command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("generate-trace", "trace-info", "convert", "fig4a",
                        "fig4b", "fig4c", "fig5", "placement", "extensions",
                        "localize", "cache"):
            # smallest valid invocation parses
            args = {"generate-trace": [command, "--out", "x.npz"],
                    "trace-info": [command, "x.npz"],
                    "convert": [command, "a.npz", "b.csv"],
                    "cache": [command, "info"]}.get(command, [command])
            assert parser.parse_args(args).command == command

    def test_runner_flags_on_experiment_subcommands(self):
        parser = build_parser()
        for command in ("fig4a", "fig4b", "fig4c", "fig5", "placement",
                        "extensions", "localize"):
            args = parser.parse_args([command, "--jobs", "4", "--no-cache"])
            assert args.jobs == 4
            assert args.no_cache is True

    def test_backend_flags_on_experiment_subcommands(self):
        parser = build_parser()
        for command in ("fig4a", "fig4b", "fig4c", "fig5", "placement",
                        "extensions", "localize"):
            args = parser.parse_args([command])
            assert args.backend == "auto" and args.broker is None
            args = parser.parse_args(
                [command, "--backend", "distributed", "--jobs", "2"])
            assert args.backend == "distributed"
            args = parser.parse_args([command, "--broker", "host:7077"])
            assert args.broker == "host:7077"
        with pytest.raises(SystemExit):
            parser.parse_args(["fig4a", "--backend", "threads"])

    def test_worker_and_broker_subcommands_parse(self):
        parser = build_parser()
        args = parser.parse_args(["worker", "--connect", "h:7077",
                                  "--heartbeat", "0.5", "--cache-dir", "c"])
        assert args.command == "worker"
        assert args.connect == "h:7077"
        assert args.heartbeat == 0.5
        assert args.cache_dir == "c"
        with pytest.raises(SystemExit):
            parser.parse_args(["worker"])  # --connect is required
        args = parser.parse_args(["broker", "--listen", ":7077",
                                  "--max-retries", "1"])
        assert args.command == "broker"
        assert args.listen == ":7077"
        assert args.max_retries == 1

    def test_shards_flag_on_sharded_subcommands(self):
        parser = build_parser()
        for command in ("extensions", "localize"):
            args = parser.parse_args([command, "--shards", "3"])
            assert args.shards == 3
        # figure sweeps have no within-condition sharding
        with pytest.raises(SystemExit):
            parser.parse_args(["fig4a", "--shards", "3"])


class TestTraceCommands:
    def test_generate_and_info_npz(self, tmp_path, capsys):
        out = str(tmp_path / "t.npz")
        assert main(["generate-trace", "--packets", "500", "--duration", "0.2",
                     "--out", out]) == 0
        assert main(["trace-info", out]) == 0
        captured = capsys.readouterr().out
        assert "packets:" in captured
        assert "flows:" in captured

    def test_generate_csv(self, tmp_path, capsys):
        out = str(tmp_path / "t.csv")
        assert main(["generate-trace", "--packets", "200", "--duration", "0.2",
                     "--out", out]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_convert_roundtrip(self, tmp_path, capsys):
        npz = str(tmp_path / "t.npz")
        csv = str(tmp_path / "t.csv")
        back = str(tmp_path / "u.npz")
        main(["generate-trace", "--packets", "200", "--duration", "0.2",
              "--out", npz])
        assert main(["convert", npz, csv]) == 0
        assert main(["convert", csv, back]) == 0
        from repro.traffic.trace import Trace
        assert len(Trace.load(npz)) == len(Trace.load(back))


class TestAnalysisCommands:
    def test_placement(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)  # default .repro-cache lands here
        assert main(["placement", "--k", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "ToR pair" in out
        assert "4480" in out  # full deployment at k=8

    def test_fig4a_tiny(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        monkeypatch.chdir(tmp_path)  # default .repro-cache lands here
        assert main(["fig4a", "--no-plot"]) == 0
        out = capsys.readouterr().out
        assert "adaptive, 93%" in out

    def test_fig5_tiny(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        monkeypatch.chdir(tmp_path)
        assert main(["fig5", "--seeds", "1", "--no-plot"]) == 0
        assert "adaptive diff" in capsys.readouterr().out

    def test_fig4c_with_plot(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        monkeypatch.chdir(tmp_path)
        assert main(["fig4c"]) == 0
        out = capsys.readouterr().out
        assert "relative error (log)" in out  # the ascii plot rendered

    def test_localize(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)  # default .repro-cache lands here
        assert main(["localize", "--packets", "3000"]) == 0
        out = capsys.readouterr().out
        assert "culprit" in out

    def test_localize_sharded_cached_rerun_matches(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["localize", "--packets", "2000", "--jobs", "2", "--shards", "2",
                "--cache-dir", cache_dir]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0  # warm: answered from the cache
        assert capsys.readouterr().out == first
        # serial, unsharded path prints the identical report
        assert main(["localize", "--packets", "2000", "--no-cache"]) == 0
        assert capsys.readouterr().out == first

    def test_extensions_selected_studies(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        monkeypatch.chdir(tmp_path)
        assert main(["extensions", "ptp", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "ptp: residual sync error" in out
        assert "multihop" not in out

    def test_extensions_rejects_unknown_study(self, capsys, monkeypatch,
                                              tmp_path):
        monkeypatch.chdir(tmp_path)
        assert main(["extensions", "warp-drive"]) == 2
        assert "unknown studies" in capsys.readouterr().err

    def test_extensions_sharded_parallel_matches_serial(self, capsys,
                                                        monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        cache_dir = str(tmp_path / "cache")
        base = ["extensions", "multihop", "--cache-dir", cache_dir]
        assert main(base + ["--jobs", "2", "--shards", "2"]) == 0
        sharded = capsys.readouterr().out
        assert main(["extensions", "multihop", "--no-cache"]) == 0
        assert capsys.readouterr().out == sharded

    def test_fig4a_parallel_cached_rerun_matches(self, capsys, monkeypatch,
                                                 tmp_path):
        """--jobs 2 and a cached re-run print the exact same table."""
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        cache_dir = str(tmp_path / "cache")
        argv = ["fig4a", "--no-plot", "--jobs", "2", "--cache-dir", cache_dir]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0  # now answered from the cache
        assert capsys.readouterr().out == first
        assert main(["fig4a", "--no-plot", "--cache-dir", cache_dir]) == 0
        assert capsys.readouterr().out == first  # serial path identical

    def test_explicit_backends_print_identical_tables(self, capsys,
                                                      monkeypatch):
        """--backend serial and --backend process agree byte for byte (the
        distributed backend's identical-output guarantee is asserted by
        tests/test_distrib.py and the CI distrib-smoke lane)."""
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        assert main(["fig4a", "--no-plot", "--no-cache",
                     "--backend", "serial"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig4a", "--no-plot", "--no-cache",
                     "--backend", "process", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_cache_info_and_clear(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        cache_dir = str(tmp_path / "cache")
        main(["placement", "--k", "4", "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        assert "entries:   1" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 1" in capsys.readouterr().out


class TestModuleInvocation:
    def test_python_dash_m_repro(self, tmp_path):
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(pathlib.Path(repro.__file__).resolve().parent.parent)]
            + sys.path)  # absolute: the child runs from tmp_path
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "placement", "--k", "4"],
            capture_output=True, text=True, timeout=120,
            cwd=tmp_path, env=env)  # default .repro-cache lands here
        assert proc.returncode == 0
        assert "ToR pair" in proc.stdout
