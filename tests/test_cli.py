"""Tests for the repro-rlir command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("generate-trace", "trace-info", "convert", "fig4a",
                        "fig4b", "fig4c", "fig5", "placement", "localize"):
            # smallest valid invocation parses
            args = {"generate-trace": [command, "--out", "x.npz"],
                    "trace-info": [command, "x.npz"],
                    "convert": [command, "a.npz", "b.csv"]}.get(command, [command])
            assert parser.parse_args(args).command == command


class TestTraceCommands:
    def test_generate_and_info_npz(self, tmp_path, capsys):
        out = str(tmp_path / "t.npz")
        assert main(["generate-trace", "--packets", "500", "--duration", "0.2",
                     "--out", out]) == 0
        assert main(["trace-info", out]) == 0
        captured = capsys.readouterr().out
        assert "packets:" in captured
        assert "flows:" in captured

    def test_generate_csv(self, tmp_path, capsys):
        out = str(tmp_path / "t.csv")
        assert main(["generate-trace", "--packets", "200", "--duration", "0.2",
                     "--out", out]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_convert_roundtrip(self, tmp_path, capsys):
        npz = str(tmp_path / "t.npz")
        csv = str(tmp_path / "t.csv")
        back = str(tmp_path / "u.npz")
        main(["generate-trace", "--packets", "200", "--duration", "0.2",
              "--out", npz])
        assert main(["convert", npz, csv]) == 0
        assert main(["convert", csv, back]) == 0
        from repro.traffic.trace import Trace
        assert len(Trace.load(npz)) == len(Trace.load(back))


class TestAnalysisCommands:
    def test_placement(self, capsys):
        assert main(["placement", "--k", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "ToR pair" in out
        assert "4480" in out  # full deployment at k=8

    def test_fig4a_tiny(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        assert main(["fig4a", "--no-plot"]) == 0
        out = capsys.readouterr().out
        assert "adaptive, 93%" in out

    def test_fig5_tiny(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        assert main(["fig5", "--seeds", "1", "--no-plot"]) == 0
        assert "adaptive diff" in capsys.readouterr().out

    def test_fig4c_with_plot(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        assert main(["fig4c"]) == 0
        out = capsys.readouterr().out
        assert "relative error (log)" in out  # the ascii plot rendered

    def test_localize(self, capsys):
        assert main(["localize", "--packets", "3000"]) == 0
        out = capsys.readouterr().out
        assert "culprit" in out


class TestModuleInvocation:
    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "placement", "--k", "4"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0
        assert "ToR pair" in proc.stdout
