"""Tests for the RED queue variant and queueing-theory validation of the
analytic FIFO (substrate credibility checks)."""

import numpy as np
import pytest

from repro.net.packet import Packet
from repro.sim.queue import FifoQueue
from repro.sim.red import RedQueue

RATE = 8e6  # 1 MB/s


def pkt(size=1000):
    return Packet(src=1, dst=2, size=size)


class TestRedQueue:
    def make(self, **kw):
        defaults = dict(rate_bps=RATE, buffer_bytes=200_000,
                        min_th_bytes=5_000, max_th_bytes=20_000,
                        max_p=0.5, seed=1)
        defaults.update(kw)
        return RedQueue(**defaults)

    def test_no_early_drops_below_min_threshold(self):
        q = self.make()
        for i in range(50):
            assert q.offer(pkt(), i * 2e-3) is not None  # queue stays short
        assert q.early_drops == 0

    def test_early_drops_under_sustained_backlog(self):
        q = self.make()
        drops = 0
        for _ in range(200):
            if q.offer(pkt(), 0.0) is None:
                drops += 1
        assert q.early_drops > 0
        assert drops == q.stats.dropped

    def test_always_drops_above_max_threshold(self):
        q = self.make(max_p=0.01)
        # build average backlog far past max_th, then every arrival dies
        for _ in range(400):
            q.offer(pkt(), 0.0)
        assert q.avg_backlog > q.max_th
        assert q.offer(pkt(), 0.0) is None

    def test_red_keeps_queues_shorter_than_tail_drop(self):
        """The point of AQM: under the same sustained load, early drops keep
        the standing queue (and hence delay) below tail-drop's full-buffer
        operation."""
        rng = np.random.default_rng(3)
        gaps = rng.exponential(0.8e-3, 3000)  # Poisson overload ~1.25x

        def mean_delay(queue):
            t = 0.0
            for gap in gaps:
                t += float(gap)
                queue.offer(pkt(), t)
            return queue.stats.mean_delay

        tail = FifoQueue(RATE, buffer_bytes=20_000)
        red = self.make(buffer_bytes=20_000, min_th_bytes=4_000,
                        max_th_bytes=12_000, max_p=0.4)
        assert mean_delay(red) < mean_delay(tail)

    def test_seeded_deterministic(self):
        def run(seed):
            q = self.make(seed=seed)
            return [q.offer(pkt(), 0.0) is None for _ in range(300)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_reset_clears_red_state(self):
        q = self.make()
        for _ in range(300):
            q.offer(pkt(), 0.0)
        q.reset()
        assert q.avg_backlog == 0.0
        assert q.early_drops == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(min_th_bytes=20_000, max_th_bytes=5_000)
        with pytest.raises(ValueError):
            self.make(max_p=0.0)
        with pytest.raises(ValueError):
            self.make(ewma_weight=2.0)


class TestQueueTheoryValidation:
    def test_md1_mean_wait(self):
        """Poisson arrivals + deterministic service: the analytic FIFO's
        mean waiting time matches the M/D/1 formula W = rho*S/(2(1-rho))."""
        rng = np.random.default_rng(0)
        size = 1000
        service = size / (RATE / 8.0)  # 1 ms
        for rho in (0.3, 0.6, 0.8):
            q = FifoQueue(RATE, buffer_bytes=None)
            t = 0.0
            waits = []
            for _ in range(60_000):
                t += float(rng.exponential(service / rho))
                dep = q.offer(pkt(size), t)
                waits.append(dep - t - service)  # waiting time only
            expected = rho * service / (2 * (1 - rho))
            assert np.mean(waits) == pytest.approx(expected, rel=0.08), rho

    def test_utilization_matches_offered_load(self):
        rng = np.random.default_rng(1)
        q = FifoQueue(RATE, buffer_bytes=None)
        t = 0.0
        service = 1e-3
        for _ in range(20_000):
            t += float(rng.exponential(service / 0.5))
            q.offer(pkt(), t)
        assert q.utilization(t) == pytest.approx(0.5, rel=0.05)
