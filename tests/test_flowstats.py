"""Tests for streaming per-flow statistics (Welford accumulators)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.flowstats import FlowStatsTable, StreamingStats

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestStreamingStats:
    def test_empty(self):
        s = StreamingStats()
        assert s.count == 0
        assert s.variance == 0.0

    def test_single_value(self):
        s = StreamingStats()
        s.add(3.0)
        assert s.mean == 3.0
        assert s.std == 0.0
        assert s.min == s.max == 3.0

    def test_matches_numpy(self):
        values = [1.5, 2.5, -3.0, 4.0, 0.0, 10.0]
        s = StreamingStats()
        for v in values:
            s.add(v)
        assert s.mean == pytest.approx(np.mean(values))
        assert s.variance == pytest.approx(np.var(values))
        assert s.std == pytest.approx(np.std(values))

    def test_min_max(self):
        s = StreamingStats()
        for v in (3.0, -1.0, 7.0):
            s.add(v)
        assert s.min == -1.0 and s.max == 7.0

    @given(st.lists(floats, min_size=1, max_size=100))
    def test_mean_var_property(self, values):
        s = StreamingStats()
        for v in values:
            s.add(v)
        assert s.count == len(values)
        assert s.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(np.var(values), rel=1e-6, abs=1e-6)

    @given(st.lists(floats, min_size=0, max_size=50),
           st.lists(floats, min_size=0, max_size=50))
    def test_merge_equals_concatenation(self, a, b):
        sa, sb, sc = StreamingStats(), StreamingStats(), StreamingStats()
        for v in a:
            sa.add(v)
            sc.add(v)
        for v in b:
            sb.add(v)
            sc.add(v)
        sa.merge(sb)
        assert sa.count == sc.count
        if sc.count:
            assert sa.mean == pytest.approx(sc.mean, rel=1e-9, abs=1e-6)
            assert sa.variance == pytest.approx(sc.variance, rel=1e-6, abs=1e-6)
            assert sa.min == sc.min and sa.max == sc.max

    def test_merge_into_empty(self):
        a, b = StreamingStats(), StreamingStats()
        b.add(2.0)
        b.add(4.0)
        a.merge(b)
        assert a.count == 2 and a.mean == 3.0


KEY1 = (1, 2, 3, 4, 6)
KEY2 = (5, 6, 7, 8, 6)


class TestFlowStatsTable:
    def test_add_and_get(self):
        t = FlowStatsTable()
        t.add(KEY1, 1.0)
        t.add(KEY1, 3.0)
        assert t.get(KEY1).mean == 2.0
        assert t.get(KEY2) is None
        assert KEY1 in t and KEY2 not in t

    def test_len_and_totals(self):
        t = FlowStatsTable()
        t.add(KEY1, 1.0)
        t.add(KEY2, 1.0)
        t.add(KEY2, 2.0)
        assert len(t) == 2
        assert t.total_samples() == 3

    def test_merge_tables(self):
        a, b = FlowStatsTable(), FlowStatsTable()
        a.add(KEY1, 1.0)
        b.add(KEY1, 3.0)
        b.add(KEY2, 5.0)
        a.merge(b)
        assert a.get(KEY1).count == 2
        assert a.get(KEY1).mean == 2.0
        assert a.get(KEY2).mean == 5.0

    def test_items_iteration(self):
        t = FlowStatsTable()
        t.add(KEY1, 1.0)
        assert dict(t.items())[KEY1].count == 1
