"""Tests for segment-level anomaly localization."""

import pytest

from repro.core.flowstats import FlowStatsTable
from repro.core.localization import flow_breakdown, localize

KEY = (1, 2, 3, 4, 6)


def table(mean, n_flows=3, samples_per_flow=10):
    t = FlowStatsTable()
    for f in range(n_flows):
        key = (f, 2, 3, 4, 6)
        for s in range(samples_per_flow):
            t.add(key, mean * (1 + 0.01 * (s % 3)))
    return t


class TestLocalize:
    def test_flags_inflated_segment(self):
        report = localize([
            ("seg-a", table(20e-6)),
            ("seg-b", table(500e-6)),
            ("seg-c", table(22e-6)),
        ])
        assert report.culprit == "seg-b"
        assert report.anomalous == ["seg-b"]

    def test_healthy_segments_not_flagged(self):
        report = localize([
            ("seg-a", table(20e-6)),
            ("seg-b", table(25e-6)),
            ("seg-c", table(22e-6)),
        ])
        assert report.culprit is None

    def test_floor_suppresses_nanosecond_noise(self):
        """On an idle fabric a 10x ratio of tiny delays is not an anomaly."""
        report = localize([
            ("seg-a", table(10e-9)),
            ("seg-b", table(200e-9)),
        ])
        assert report.culprit is None

    def test_min_samples_guard(self):
        report = localize([
            ("seg-a", table(20e-6)),
            ("thin", table(900e-6, n_flows=1, samples_per_flow=2)),
        ], min_samples=10)
        assert "thin" not in report.anomalous

    def test_summaries_sorted_by_mean(self):
        report = localize([
            ("low", table(10e-6)),
            ("high", table(100e-6)),
            ("mid", table(50e-6)),
        ])
        assert [s.name for s in report.summaries] == ["high", "mid", "low"]

    def test_requires_segments(self):
        with pytest.raises(ValueError):
            localize([])

    def test_multiple_anomalies_ranked(self):
        report = localize([
            ("a", table(10e-6)),
            ("b", table(11e-6)),
            ("c", table(12e-6)),
            ("x", table(500e-6)),
            ("y", table(900e-6)),
        ])
        assert report.anomalous == ["y", "x"]


class TestFlowBreakdown:
    def test_per_segment_stats(self):
        t1, t2 = FlowStatsTable(), FlowStatsTable()
        t1.add(KEY, 10e-6)
        breakdown = flow_breakdown(KEY, [("seg1", t1), ("seg2", t2)])
        assert breakdown["seg1"].mean == pytest.approx(10e-6)
        assert breakdown["seg2"] is None
