"""Tests for segment-level anomaly localization."""

import pytest

from repro.core.flowstats import FlowStatsTable
from repro.core.localization import flow_breakdown, localize

KEY = (1, 2, 3, 4, 6)


def table(mean, n_flows=3, samples_per_flow=10):
    t = FlowStatsTable()
    for f in range(n_flows):
        key = (f, 2, 3, 4, 6)
        for s in range(samples_per_flow):
            t.add(key, mean * (1 + 0.01 * (s % 3)))
    return t


class TestLocalize:
    def test_flags_inflated_segment(self):
        report = localize([
            ("seg-a", table(20e-6)),
            ("seg-b", table(500e-6)),
            ("seg-c", table(22e-6)),
        ])
        assert report.culprit == "seg-b"
        assert report.anomalous == ["seg-b"]

    def test_healthy_segments_not_flagged(self):
        report = localize([
            ("seg-a", table(20e-6)),
            ("seg-b", table(25e-6)),
            ("seg-c", table(22e-6)),
        ])
        assert report.culprit is None

    def test_floor_suppresses_nanosecond_noise(self):
        """On an idle fabric a 10x ratio of tiny delays is not an anomaly."""
        report = localize([
            ("seg-a", table(10e-9)),
            ("seg-b", table(200e-9)),
        ])
        assert report.culprit is None

    def test_min_samples_guard(self):
        report = localize([
            ("seg-a", table(20e-6)),
            ("thin", table(900e-6, n_flows=1, samples_per_flow=2)),
        ], min_samples=10)
        assert "thin" not in report.anomalous

    def test_summaries_sorted_by_mean(self):
        report = localize([
            ("low", table(10e-6)),
            ("high", table(100e-6)),
            ("mid", table(50e-6)),
        ])
        assert [s.name for s in report.summaries] == ["high", "mid", "low"]

    def test_requires_segments(self):
        with pytest.raises(ValueError):
            localize([])

    def test_all_segments_below_min_samples_never_flag(self):
        """A fabric where no segment has enough evidence must stay silent,
        however extreme the thin means look."""
        report = localize([
            ("a", table(20e-6, n_flows=1, samples_per_flow=2)),
            ("b", table(900e-6, n_flows=1, samples_per_flow=2)),
        ], min_samples=10)
        assert report.anomalous == []
        assert report.culprit is None
        assert len(report.summaries) == 2  # still summarized, just not flagged

    def test_single_segment_is_its_own_baseline(self):
        """One segment's baseline is its own mean, so it can never exceed
        factor × baseline (factor > 1): no peers, no anomaly call."""
        report = localize([("only", table(900e-6))], factor=3.0)
        assert report.baseline_mean == report.summaries[0].mean
        assert report.culprit is None

    def test_tie_at_factor_boundary_not_flagged(self):
        """mean == factor × baseline is NOT anomalous: the comparison is
        strict, so a segment exactly at the threshold stays unflagged."""
        base = 100e-6
        factor = 3.0

        def constant_table(value):
            # constant samples keep the Welford mean exactly at `value`,
            # so the boundary comparison is an exact float tie
            t = FlowStatsTable()
            for f in range(3):
                for _ in range(10):
                    t.add((f, 2, 3, 4, 6), value)
            return t

        baselines = [(name, constant_table(base)) for name in ("a", "b", "c")]
        report = localize(baselines + [("boundary", constant_table(factor * base))],
                          factor=factor, floor=1e-6)
        assert report.baseline_mean == base
        assert "boundary" not in report.anomalous
        # a hair above the boundary flips it
        report = localize(
            baselines + [("above", constant_table(factor * base * 1.001))],
            factor=factor, floor=1e-6)
        assert report.culprit == "above"

    def test_as_rows_plain_data(self):
        report = localize([
            ("seg-a", table(20e-6)),
            ("seg-b", table(500e-6)),
            ("seg-c", table(22e-6)),
        ])
        rows = report.as_rows()
        assert [name for name, *_ in rows] == ["seg-b", "seg-c", "seg-a"]
        (name, mean, flows, samples, anomalous) = rows[0]
        assert anomalous is True and flows == 3 and samples == 30
        assert rows[1][4] is False and rows[2][4] is False
        import pickle

        assert pickle.loads(pickle.dumps(rows)) == rows

    def test_multiple_anomalies_ranked(self):
        report = localize([
            ("a", table(10e-6)),
            ("b", table(11e-6)),
            ("c", table(12e-6)),
            ("x", table(500e-6)),
            ("y", table(900e-6)),
        ])
        assert report.anomalous == ["y", "x"]


class TestFlowBreakdown:
    def test_per_segment_stats(self):
        t1, t2 = FlowStatsTable(), FlowStatsTable()
        t1.add(KEY, 10e-6)
        breakdown = flow_breakdown(KEY, [("seg1", t1), ("seg2", t2)])
        assert breakdown["seg1"].mean == pytest.approx(10e-6)
        assert breakdown["seg2"] is None
