"""Determinism of the sweep runner: serial and parallel execution of the
same seeded conditions must be indistinguishable.

The simulator consumes no global randomness — every job carries its trace
seed (inside the frozen config) and its cross-traffic selection seed
(``run_seed``) — so a condition's summary is a pure function of its
:class:`~repro.runner.spec.JobSpec`.  These tests pin that property: the
serial fallback, a repeated serial run, and a 2-worker
:class:`~repro.runner.runner.ParallelRunner` must produce summaries that
are equal value-by-value *and* byte-identical under pickle.
"""

import pickle

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig4 import run_fig4ab
from repro.runner import JobSpec, ParallelRunner, SweepSpec


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(scale=0.01, seed=7)


@pytest.fixture(scope="module")
def jobs(cfg):
    """Two independent conditions of the Figure-4 grid."""
    return [
        JobSpec.from_config(cfg, "adaptive", "random", 0.67),
        JobSpec.from_config(cfg, "static", "random", 0.67),
    ]


class TestSerialDeterminism:
    def test_same_job_twice_is_identical(self, jobs):
        runner = ParallelRunner(jobs=1)
        first = runner.run_one(jobs[0])
        second = runner.run_one(jobs[0])
        assert first == second
        assert pickle.dumps(first) == pickle.dumps(second)


class TestParallelMatchesSerial:
    def test_summaries_equal_and_byte_identical(self, jobs):
        serial = ParallelRunner(jobs=1).run(jobs)
        parallel = ParallelRunner(jobs=2).run(jobs)
        for s, p in zip(serial, parallel):
            assert s == p
            assert pickle.dumps(s) == pickle.dumps(p)

    def test_processed_delivered_and_flows_match(self, jobs):
        serial = ParallelRunner(jobs=1).run(jobs)
        parallel = ParallelRunner(jobs=2).run(jobs)
        for s, p in zip(serial, parallel):
            # the ISSUE's explicit invariants, asserted field by field
            assert s.processed_packets == p.processed_packets
            assert s.delivered_packets == p.delivered_packets
            assert s.arrivals2 == p.arrivals2
            assert s.drops2 == p.drops2
            assert s.flow_estimated == p.flow_estimated
            assert s.flow_true == p.flow_true
            assert s.mean_join.errors == p.mean_join.errors
            assert s.std_join.errors == p.std_join.errors
            assert s.measured_util == p.measured_util
            assert s.mean_true_latency == p.mean_true_latency
            assert s.refs_injected == p.refs_injected

    def test_driver_output_independent_of_worker_count(self, cfg):
        serial_curves = run_fig4ab(cfg)
        parallel_curves = run_fig4ab(cfg, runner=ParallelRunner(jobs=2))
        assert [c.label for c in serial_curves] == [c.label for c in parallel_curves]
        for s, p in zip(serial_curves, parallel_curves):
            assert s.summary == p.summary
            assert s.summary_row() == p.summary_row()


class TestSweepSpecEnumeration:
    def test_jobs_enumerate_in_declared_nesting_order(self, cfg):
        spec = SweepSpec.from_config(
            cfg,
            schemes=("adaptive", "static"),
            utilizations=(0.93, 0.67),
        )
        labels = [(j.target_util, j.scheme) for j in spec.jobs()]
        assert labels == [
            (0.93, "adaptive"), (0.93, "static"),
            (0.67, "adaptive"), (0.67, "static"),
        ]
        assert len(spec) == 4

    def test_axis_order_changes_nesting(self, cfg):
        spec = SweepSpec.from_config(
            cfg,
            schemes=("adaptive", "static"),
            utilizations=(0.93, 0.67),
            axis_order=("scheme", "utilization", "model", "estimator", "run_seed"),
        )
        labels = [(j.target_util, j.scheme) for j in spec.jobs()]
        assert labels == [
            (0.93, "adaptive"), (0.67, "adaptive"),
            (0.93, "static"), (0.67, "static"),
        ]

    def test_bad_axis_order_rejected(self, cfg):
        with pytest.raises(ValueError):
            SweepSpec.from_config(cfg, axis_order=("scheme", "utilization"))

    def test_jobspec_roundtrips_config(self):
        local = ExperimentConfig(scale=0.01, seed=7)
        local.static_n = 64  # a mutated knob must survive the freeze
        job = JobSpec.from_config(local, "static", "random", 0.93)
        rebuilt = job.experiment_config()
        assert vars(rebuilt) == vars(local)

    def test_jobspec_is_picklable(self, jobs):
        assert pickle.loads(pickle.dumps(jobs[0])) == jobs[0]
