"""Determinism of the sweep runner: serial and parallel execution of the
same seeded conditions must be indistinguishable.

The simulator consumes no global randomness — every job carries its trace
seed (inside the frozen config) and its cross-traffic selection seed
(``run_seed``) — so a condition's summary is a pure function of its
:class:`~repro.runner.spec.JobSpec`.  These tests pin that property: the
serial fallback, a repeated serial run, and a 2-worker
:class:`~repro.runner.runner.ParallelRunner` must produce summaries that
are equal value-by-value *and* byte-identical under pickle.

The extension studies add a third execution mode — within-condition flow
sharding (``shards=N`` splits one condition's per-flow estimation over N
replay jobs, :mod:`repro.core.replay`) — which must also be byte-identical
to the serial and parallel paths, for every (jobs, shards) combination.
"""

import pickle

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.extensions import (
    run_granularity_comparison,
    run_localization_study,
    run_multihop_ablation,
)
from repro.experiments.fig4 import run_fig4ab
from repro.runner import JobSpec, ParallelRunner, SweepSpec


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(scale=0.01, seed=7)


@pytest.fixture(scope="module")
def jobs(cfg):
    """Two independent conditions of the Figure-4 grid."""
    return [
        JobSpec.from_config(cfg, "adaptive", "random", 0.67),
        JobSpec.from_config(cfg, "static", "random", 0.67),
    ]


class TestSerialDeterminism:
    def test_same_job_twice_is_identical(self, jobs):
        runner = ParallelRunner(jobs=1)
        first = runner.run_one(jobs[0])
        second = runner.run_one(jobs[0])
        assert first == second
        assert pickle.dumps(first) == pickle.dumps(second)


class TestParallelMatchesSerial:
    def test_summaries_equal_and_byte_identical(self, jobs):
        serial = ParallelRunner(jobs=1).run(jobs)
        parallel = ParallelRunner(jobs=2).run(jobs)
        for s, p in zip(serial, parallel):
            assert s == p
            assert pickle.dumps(s) == pickle.dumps(p)

    def test_processed_delivered_and_flows_match(self, jobs):
        serial = ParallelRunner(jobs=1).run(jobs)
        parallel = ParallelRunner(jobs=2).run(jobs)
        for s, p in zip(serial, parallel):
            # the ISSUE's explicit invariants, asserted field by field
            assert s.processed_packets == p.processed_packets
            assert s.delivered_packets == p.delivered_packets
            assert s.arrivals2 == p.arrivals2
            assert s.drops2 == p.drops2
            assert s.flow_estimated == p.flow_estimated
            assert s.flow_true == p.flow_true
            assert s.mean_join.errors == p.mean_join.errors
            assert s.std_join.errors == p.std_join.errors
            assert s.measured_util == p.measured_util
            assert s.mean_true_latency == p.mean_true_latency
            assert s.refs_injected == p.refs_injected

    def test_driver_output_independent_of_worker_count(self, cfg):
        serial_curves = run_fig4ab(cfg)
        parallel_curves = run_fig4ab(cfg, runner=ParallelRunner(jobs=2))
        assert [c.label for c in serial_curves] == [c.label for c in parallel_curves]
        for s, p in zip(serial_curves, parallel_curves):
            assert s.summary == p.summary
            assert s.summary_row() == p.summary_row()


class TestExtensionSharding:
    """serial == parallel == within-condition-sharded, byte for byte."""

    def test_multihop_serial_parallel_sharded_identical(self, cfg):
        serial = run_multihop_ablation(cfg, hops=(1, 2))
        parallel = run_multihop_ablation(cfg, hops=(1, 2),
                                         runner=ParallelRunner(jobs=2))
        sharded = run_multihop_ablation(cfg, hops=(1, 2),
                                        runner=ParallelRunner(jobs=2), shards=3)
        serial_sharded = run_multihop_ablation(cfg, hops=(1, 2), shards=2)
        blob = pickle.dumps(serial)
        assert serial == parallel == sharded == serial_sharded
        assert blob == pickle.dumps(parallel)
        assert blob == pickle.dumps(sharded)
        assert blob == pickle.dumps(serial_sharded)

    def test_granularity_serial_parallel_sharded_identical(self):
        serial = run_granularity_comparison(n_packets=3000)
        parallel = run_granularity_comparison(n_packets=3000,
                                              runner=ParallelRunner(jobs=2))
        sharded = run_granularity_comparison(n_packets=3000,
                                             runner=ParallelRunner(jobs=2),
                                             shards=3)
        blob = pickle.dumps(serial)
        assert serial == parallel == sharded
        assert blob == pickle.dumps(parallel)
        assert blob == pickle.dumps(sharded)

    def test_localization_study_sharding_identical(self):
        serial = run_localization_study(n_packets=2000)
        sharded = run_localization_study(n_packets=2000,
                                         runner=ParallelRunner(jobs=2),
                                         shards=3)
        assert serial.as_rows() == sharded.as_rows()
        assert serial.culprit == sharded.culprit
        assert pickle.dumps(serial.as_rows()) == pickle.dumps(sharded.as_rows())

    def test_distinct_shards_cover_distinct_flows(self, cfg):
        """The shard split is a real partition: shard jobs of one condition
        return disjoint flow sets whose union is the unsharded set."""
        from repro.experiments.extension_jobs import MultihopShardJob
        from repro.runner.spec import config_items

        frozen = config_items(cfg)
        whole = MultihopShardJob(frozen, 1, 0.8).run()
        parts = [MultihopShardJob(frozen, 1, 0.8, shard=s, n_shards=3).run()
                 for s in range(3)]
        whole_keys = set(whole.segments[0][1].true.keys())
        part_keys = [set(p.segments[0][1].true.keys()) for p in parts]
        assert set().union(*part_keys) == whole_keys
        for i in range(3):
            for j in range(i + 1, 3):
                assert not (part_keys[i] & part_keys[j])


class TestSweepSpecEnumeration:
    def test_jobs_enumerate_in_declared_nesting_order(self, cfg):
        spec = SweepSpec.from_config(
            cfg,
            schemes=("adaptive", "static"),
            utilizations=(0.93, 0.67),
        )
        labels = [(j.target_util, j.scheme) for j in spec.jobs()]
        assert labels == [
            (0.93, "adaptive"), (0.93, "static"),
            (0.67, "adaptive"), (0.67, "static"),
        ]
        assert len(spec) == 4

    def test_axis_order_changes_nesting(self, cfg):
        spec = SweepSpec.from_config(
            cfg,
            schemes=("adaptive", "static"),
            utilizations=(0.93, 0.67),
            axis_order=("scheme", "utilization", "model", "estimator", "run_seed"),
        )
        labels = [(j.target_util, j.scheme) for j in spec.jobs()]
        assert labels == [
            (0.93, "adaptive"), (0.67, "adaptive"),
            (0.93, "static"), (0.67, "static"),
        ]

    def test_bad_axis_order_rejected(self, cfg):
        with pytest.raises(ValueError):
            SweepSpec.from_config(cfg, axis_order=("scheme", "utilization"))

    def test_jobspec_roundtrips_config(self):
        local = ExperimentConfig(scale=0.01, seed=7)
        local.static_n = 64  # a mutated knob must survive the freeze
        job = JobSpec.from_config(local, "static", "random", 0.93)
        rebuilt = job.experiment_config()
        assert vars(rebuilt) == vars(local)

    def test_jobspec_is_picklable(self, jobs):
        assert pickle.loads(pickle.dumps(jobs[0])) == jobs[0]
