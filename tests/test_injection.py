"""Tests for injection policies and sender-side utilization estimation."""

import pytest

from repro.core.injection import AdaptiveInjection, StaticInjection
from repro.core.utilization import EwmaUtilization


class TestStaticInjection:
    def test_fixed_gap(self):
        p = StaticInjection(100)
        assert p.gap(0.0) == 100
        assert p.gap(1.0) == 100
        assert not p.is_adaptive

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            StaticInjection(0)


class TestAdaptiveInjection:
    def test_paper_operating_point(self):
        """~22% sender-link utilization triggers the highest rate, 1-and-10."""
        p = AdaptiveInjection()
        assert p.gap(0.22) == 10

    def test_saturated_link_lowest_rate(self):
        p = AdaptiveInjection()
        assert p.gap(0.99) == 300

    def test_monotone_decreasing_rate(self):
        p = AdaptiveInjection()
        gaps = [p.gap(u / 100) for u in range(0, 101, 5)]
        assert gaps == sorted(gaps)
        assert p.is_adaptive

    def test_linear_midpoint(self):
        p = AdaptiveInjection(n_min=10, n_max=300, util_low=0.3, util_high=0.95)
        mid = p.gap((0.3 + 0.95) / 2)
        assert mid == pytest.approx((10 + 300) / 2, abs=1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveInjection(n_min=0)
        with pytest.raises(ValueError):
            AdaptiveInjection(n_min=100, n_max=10)
        with pytest.raises(ValueError):
            AdaptiveInjection(util_low=0.9, util_high=0.5)


class TestEwmaUtilization:
    def test_initial_estimate(self):
        u = EwmaUtilization(8e6, window=0.01, initial=0.5)
        assert u.estimate == 0.5

    def test_full_window_reads_one(self):
        # 1 MB/s link, 10 ms window = 10 kB capacity per window
        u = EwmaUtilization(8e6, window=0.01, alpha=1.0)
        u.observe(0.000, 10_000)
        u.observe(0.011, 1)  # crossing the boundary folds the window
        assert u.estimate == pytest.approx(1.0)

    def test_half_load(self):
        u = EwmaUtilization(8e6, window=0.01, alpha=1.0)
        u.observe(0.000, 5_000)
        u.observe(0.011, 1)
        assert u.estimate == pytest.approx(0.5)

    def test_idle_windows_decay(self):
        u = EwmaUtilization(8e6, window=0.01, alpha=1.0)
        u.observe(0.000, 10_000)
        u.observe(0.051, 1)  # 4 empty windows folded as zeros
        assert u.estimate == pytest.approx(0.0)

    def test_ewma_smoothing(self):
        u = EwmaUtilization(8e6, window=0.01, alpha=0.5, initial=0.0)
        u.observe(0.000, 10_000)
        u.observe(0.011, 1)
        assert u.estimate == pytest.approx(0.5)  # 0 + 0.5*(1.0-0)

    def test_sample_capped_at_one(self):
        u = EwmaUtilization(8e6, window=0.01, alpha=1.0)
        u.observe(0.000, 50_000)  # 5x the window capacity
        u.observe(0.011, 1)
        assert u.estimate == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EwmaUtilization(0)
        with pytest.raises(ValueError):
            EwmaUtilization(1e6, window=0)
        with pytest.raises(ValueError):
            EwmaUtilization(1e6, alpha=0.0)
