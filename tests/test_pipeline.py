"""Tests for the two-switch pipeline (the paper's Figure-3 environment)."""

import pytest

from repro.net.addressing import ip_to_int
from repro.net.packet import Packet, PacketKind
from repro.sim.pipeline import PipelineConfig, TwoSwitchPipeline


def regular(ts, size=1000, sport=1):
    return Packet(src=ip_to_int("10.1.0.1"), dst=ip_to_int("10.2.0.1"),
                  sport=sport, size=size, ts=ts)


def cross(ts, size=1000):
    return Packet(src=ip_to_int("10.9.0.1"), dst=ip_to_int("10.10.0.1"),
                  size=size, ts=ts, kind=PacketKind.CROSS)


CFG = PipelineConfig(rate1_bps=8e6, rate2_bps=8e6, buffer1_bytes=None,
                     buffer2_bytes=None, proc_delay=0.0)


class RecordingReceiver:
    def __init__(self):
        self.seen = []

    def observe(self, packet, now):
        self.seen.append((packet, now))


class CountingSender:
    """Injects one 64-byte reference after every n regular packets."""

    def __init__(self, n):
        self.n = n
        self.count = 0
        self.made = 0

    def on_regular(self, packet, now):
        self.count += 1
        if self.count % self.n:
            return None
        self.made += 1
        ref = Packet(src=0, dst=0, size=64, ts=now, kind=PacketKind.REFERENCE,
                     sender_id=1, ref_timestamp=now)
        ref.tap_time = now
        return [ref]


class TestPipelineBasics:
    def test_two_hop_delay(self):
        rx = RecordingReceiver()
        result = TwoSwitchPipeline(CFG).run([regular(0.0)], [], receiver=rx)
        (_, arrival), = rx.seen
        # two transmissions of 1000B at 1 MB/s, no queueing
        assert arrival == pytest.approx(2e-3)
        assert result.arrivals2[PacketKind.REGULAR] == 1

    def test_tap_time_set_at_switch1(self):
        rx = RecordingReceiver()
        TwoSwitchPipeline(CFG).run([regular(0.5)], [], receiver=rx)
        (p, _), = rx.seen
        assert p.tap_time == 0.5

    def test_cross_traffic_not_observed_but_queues(self):
        rx = RecordingReceiver()
        pipeline = TwoSwitchPipeline(CFG)
        # cross packet arrives at switch 2 just before the regular one
        result = pipeline.run([regular(0.0)], [(0.9e-3, cross(0.9e-3))], receiver=rx)
        (p, arrival), = rx.seen
        assert p.is_regular
        # regular reached switch2 at 1 ms; cross still serializing until 1.9 ms
        assert arrival == pytest.approx(1.9e-3 + 1e-3)
        assert result.arrivals2[PacketKind.CROSS] == 1

    def test_sender_refs_follow_their_trigger(self):
        rx = RecordingReceiver()
        sender = CountingSender(2)
        TwoSwitchPipeline(CFG).run([regular(i * 0.01, sport=i) for i in range(4)],
                                   [], sender=sender, receiver=rx)
        kinds = [p.kind for p, _ in rx.seen]
        assert kinds == [PacketKind.REGULAR, PacketKind.REGULAR, PacketKind.REFERENCE,
                         PacketKind.REGULAR, PacketKind.REGULAR, PacketKind.REFERENCE]

    def test_refs_injected_counted(self):
        sender = CountingSender(2)
        result = TwoSwitchPipeline(CFG).run(
            [regular(i * 0.01, sport=i) for i in range(10)], [], sender=sender)
        assert result.refs_injected == 5
        assert result.arrivals2[PacketKind.REFERENCE] == 5

    def test_dropped_at_switch1_never_reaches_sender_tap(self):
        cfg = PipelineConfig(rate1_bps=8e6, rate2_bps=8e6, buffer1_bytes=1500,
                             buffer2_bytes=None, proc_delay=0.0)
        sender = CountingSender(1)
        # burst of 5 packets at t=0: only some fit in switch 1's buffer
        TwoSwitchPipeline(cfg).run([regular(0.0, sport=i) for i in range(5)], [],
                                   sender=sender)
        assert sender.count < 5

    def test_utilization_accounting(self):
        result = TwoSwitchPipeline(CFG).run(
            [regular(i * 0.01) for i in range(10)], [], duration=0.1)
        # 10 kB over 0.1 s at 1 MB/s = 10% on both switches
        assert result.utilization1 == pytest.approx(0.1)
        assert result.utilization2 == pytest.approx(0.1)

    def test_loss_rate_per_kind(self):
        cfg = PipelineConfig(rate1_bps=8e6, rate2_bps=8e6, buffer1_bytes=None,
                             buffer2_bytes=2000, proc_delay=0.0)
        # regulars spaced out; a cross burst overflows switch 2
        burst = [(0.0, cross(0.0)) for _ in range(10)]
        result = TwoSwitchPipeline(cfg).run([regular(i * 0.05) for i in range(4)],
                                            burst)
        assert result.loss_rate(PacketKind.CROSS) > 0
        assert result.loss_rate(PacketKind.REGULAR) == 0.0

    def test_duration_inferred_when_omitted(self):
        result = TwoSwitchPipeline(CFG).run([regular(0.0)], [])
        assert result.duration == pytest.approx(2e-3)

    def test_merge_keeps_time_order(self):
        """Receiver sees switch-2 departures in non-decreasing time."""
        rx = RecordingReceiver()
        regs = [regular(i * 1e-4, sport=i) for i in range(50)]
        crs = [(i * 1.7e-4, cross(i * 1.7e-4)) for i in range(30)]
        TwoSwitchPipeline(CFG).run(regs, crs, receiver=rx)
        times = [t for _, t in rx.seen]
        assert times == sorted(times)
