"""The per-commit history kept inside ``BENCH_pipeline.json``.

``benchmarks/bench_history.py`` is plain-module tooling (the benchmarks
directory is not a package), so it is loaded here by file path.  The merge
must append one provenance-stamped entry per run while preserving the
latest-wins ``results`` view the CI smoke lanes assert on.
"""

import importlib.util
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def bench_history():
    path = ROOT / "benchmarks" / "bench_history.py"
    spec = importlib.util.spec_from_file_location("bench_history_under_test", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def entry(bench_history, sha="abc123", ts="2026-07-30T00:00:00Z",
          results=None, scale=1.0):
    return bench_history.make_entry(
        results if results is not None else {"pipeline_fig4": {"speedup": 6.0}},
        sha=sha, timestamp=ts, scale=scale, python="3.12.0", numpy="2.0.0",
    )


class TestMergeBenchHistory:
    def test_first_run_seeds_history_and_latest(self, bench_history):
        merged = bench_history.merge_bench_history({}, entry(bench_history))
        assert merged["bench"] == "pipeline_throughput"
        assert merged["git_sha"] == "abc123"
        assert len(merged["history"]) == 1
        assert merged["results"]["pipeline_fig4"]["speedup"] == 6.0

    def test_runs_append_and_latest_wins(self, bench_history):
        first = bench_history.merge_bench_history(
            {}, entry(bench_history, sha="aaa",
                      results={"pipeline_fig4": {"speedup": 5.0}}))
        second = bench_history.merge_bench_history(
            first, entry(bench_history, sha="bbb", ts="2026-07-30T01:00:00Z",
                         results={"pipeline_fig4": {"speedup": 7.0}}))
        assert [h["git_sha"] for h in second["history"]] == ["aaa", "bbb"]
        assert second["results"]["pipeline_fig4"]["speedup"] == 7.0
        assert second["git_sha"] == "bbb"
        # the old run's numbers survive in its history entry
        assert second["history"][0]["results"]["pipeline_fig4"]["speedup"] == 5.0

    def test_partial_run_refreshes_only_its_benches(self, bench_history):
        base = bench_history.merge_bench_history(
            {}, entry(bench_history, results={
                "pipeline_fig4": {"speedup": 5.0},
                "trace_generation": {"speedup": 12.0},
            }))
        partial = bench_history.merge_bench_history(
            base, entry(bench_history, sha="ccc",
                        results={"pipeline_fig4": {"speedup": 6.5}}))
        assert partial["results"]["pipeline_fig4"]["speedup"] == 6.5
        assert partial["results"]["trace_generation"]["speedup"] == 12.0
        # but the history entry records exactly what that run measured
        assert "trace_generation" not in partial["history"][-1]["results"]

    def test_absorbs_pre_history_payload(self, bench_history):
        legacy = {"bench": "pipeline_throughput",
                  "results": {"interpolation_flush": {"speedup": 24.0}}}
        merged = bench_history.merge_bench_history(legacy, entry(bench_history))
        assert merged["results"]["interpolation_flush"]["speedup"] == 24.0
        assert len(merged["history"]) == 1

    def test_history_is_bounded(self, bench_history):
        payload = {}
        for i in range(7):
            payload = bench_history.merge_bench_history(
                payload, entry(bench_history, sha=f"sha{i}"), limit=5)
        shas = [h["git_sha"] for h in payload["history"]]
        assert shas == [f"sha{i}" for i in range(2, 7)]  # oldest dropped

    def test_same_commit_twice_gets_two_entries(self, bench_history):
        payload = bench_history.merge_bench_history(
            {}, entry(bench_history, sha="same", ts="2026-07-30T00:00:00Z"))
        payload = bench_history.merge_bench_history(
            payload, entry(bench_history, sha="same", ts="2026-07-30T02:00:00Z"))
        stamps = [(h["git_sha"], h["timestamp"]) for h in payload["history"]]
        assert stamps == [("same", "2026-07-30T00:00:00Z"),
                         ("same", "2026-07-30T02:00:00Z")]

    def test_malformed_payload_recovers(self, bench_history):
        for garbage in (None, [], "not json-shaped", {"history": "nope"}):
            merged = bench_history.merge_bench_history(garbage, entry(bench_history))
            assert len(merged["history"]) == 1

    def test_git_sha_resolves_in_this_repo(self, bench_history):
        sha = bench_history.git_sha(ROOT)
        assert sha == "unknown" or (len(sha) == 40 and int(sha, 16) >= 0)

    def test_utc_timestamp_shape(self, bench_history):
        stamp = bench_history.utc_timestamp()
        assert len(stamp) == 20 and stamp.endswith("Z") and stamp[4] == "-"

class TestObsRideAlong:
    """The optional ``repro.obs`` span summary riding in each entry."""

    def test_entry_includes_obs_when_given(self, bench_history):
        summary = {"runner.sweep": {"count": 1, "total_s": 0.5, "max_s": 0.5}}
        made = bench_history.make_entry(
            {"pipeline_fig4": {"speedup": 6.0}},
            sha="abc", timestamp="2026-07-30T00:00:00Z", scale=1.0,
            python="3.12.0", numpy="2.0.0", obs=summary,
        )
        assert made["obs"] == summary
        made["obs"]["extra"] = {}  # the entry owns its own top-level dict
        assert "extra" not in summary

    def test_entry_omits_obs_when_absent_or_empty(self, bench_history):
        for quiet in (None, {}):
            made = bench_history.make_entry(
                {"pipeline_fig4": {"speedup": 6.0}},
                sha="abc", timestamp="2026-07-30T00:00:00Z", scale=1.0,
                python="3.12.0", numpy="2.0.0", obs=quiet,
            )
            assert "obs" not in made

    def test_history_preserves_obs(self, bench_history):
        summary = {"runner.job": {"count": 4, "total_s": 1.0, "max_s": 0.3}}
        made = bench_history.make_entry(
            {"pipeline_fig4": {"speedup": 6.0}},
            sha="abc", timestamp="2026-07-30T00:00:00Z", scale=1.0,
            python="3.12.0", numpy="2.0.0", obs=summary,
        )
        merged = bench_history.merge_bench_history({}, made)
        assert merged["history"][-1]["obs"] == summary
        # but the latest-wins results view stays obs-free
        assert "obs" not in merged["results"]

    def test_obs_summary_quiet_by_default(self, bench_history):
        # benches run without REPRO_OBS; the helper must contribute nothing
        import os
        assert not os.environ.get("REPRO_OBS")
        assert bench_history.obs_summary() is None
