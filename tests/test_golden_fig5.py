"""Golden regression test: Figure 5 numbers are frozen.

Every Figure-5 row (measured utilization, loss rates, reference counts) at
the golden scale/seed must match the checked-in fixture bit-for-bit; see
``tests/make_golden.py`` for the regeneration policy.
"""

import json

import pytest

from make_golden import (
    GOLDEN_DIR,
    GOLDEN_FIG5_SEEDS,
    GOLDEN_SCALE,
    GOLDEN_SEED,
    compute_fig5,
)

FIXTURE = GOLDEN_DIR / f"fig5_scale{GOLDEN_SCALE}_seed{GOLDEN_SEED}.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def current():
    return compute_fig5()


def test_fixture_matches_golden_parameters(golden):
    assert golden["scale"] == GOLDEN_SCALE
    assert golden["seed"] == GOLDEN_SEED
    assert golden["n_seeds"] == GOLDEN_FIG5_SEEDS


def test_row_count_frozen(golden, current):
    assert len(current["rows"]) == len(golden["rows"])


def test_rows_exactly_match(golden, current):
    for got, want in zip(current["rows"], golden["rows"]):
        # exact float equality is intentional: the simulator is
        # bit-deterministic, so any drift is a real behavior change
        assert got == want, (
            f"fig5 row at target_util={want['target_util']} shifted — if "
            f"intentional, regenerate tests/golden/ via tests/make_golden.py"
        )


def test_batch_fast_path_reproduces_the_golden_rows(golden):
    """The columnar pipeline must hit the per-object fixtures bit-for-bit
    (raw-float comparison, including the scheme=None baseline runs)."""
    batched = compute_fig5(batch=True)
    assert len(batched["rows"]) == len(golden["rows"])
    for got, want in zip(batched["rows"], golden["rows"]):
        assert got == want, (
            f"fig5 batch row at target_util={want['target_util']} diverged "
            f"from the golden (object-path) numbers"
        )
