"""Tests for the interpolation core — the heart of RLI."""

import pytest
from hypothesis import given, strategies as st

from repro.core.interpolation import (
    ESTIMATORS,
    InterpolationBuffer,
    linear_interpolate,
)

KEY = (1, 2, 3, 4, 6)

times = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)
delays = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestLinearInterpolate:
    def test_midpoint(self):
        assert linear_interpolate(0.0, 10.0, 1.0, 20.0, 0.5) == pytest.approx(15.0)

    def test_endpoints(self):
        assert linear_interpolate(0.0, 10.0, 1.0, 20.0, 0.0) == pytest.approx(10.0)
        assert linear_interpolate(0.0, 10.0, 1.0, 20.0, 1.0) == pytest.approx(20.0)

    def test_degenerate_interval_averages(self):
        assert linear_interpolate(1.0, 10.0, 1.0, 20.0, 1.0) == pytest.approx(15.0)

    @given(times, delays, times, delays, st.floats(min_value=0.0, max_value=1.0))
    def test_bounded_by_endpoints(self, t0, d0, span, d1, frac):
        t1 = t0 + span + 1e-6
        t = t0 + frac * (t1 - t0)
        est = linear_interpolate(t0, d0, t1, d1, t)
        lo, hi = min(d0, d1), max(d0, d1)
        assert lo - 1e-9 <= est <= hi + 1e-9


class TestBuffer:
    def test_exact_on_linear_delay_profile(self):
        """If true delay is a linear function of arrival time, linear
        interpolation is exact — the delay-locality ideal."""
        buf = InterpolationBuffer("linear")
        line = lambda t: 5.0 + 2.0 * t
        assert buf.add_reference(0.0, line(0.0)) == []
        for t in (0.1, 0.4, 0.7):
            buf.add_regular(t, KEY, line(t))
        out = buf.add_reference(1.0, line(1.0))
        assert len(out) == 3
        for e in out:
            assert e.estimated == pytest.approx(e.true_delay)
            assert e.abs_error == pytest.approx(0.0, abs=1e-12)

    def test_packets_before_first_reference_one_sided(self):
        buf = InterpolationBuffer()
        buf.add_regular(0.1, KEY, 1.0)
        buf.add_regular(0.2, KEY, 1.0)
        out = buf.add_reference(0.5, 7.0)
        assert [e.estimated for e in out] == [7.0, 7.0]

    def test_flush_uses_last_reference(self):
        buf = InterpolationBuffer()
        buf.add_reference(0.0, 3.0)
        buf.add_regular(0.5, KEY, 1.0)
        out = buf.flush()
        assert [e.estimated for e in out] == [3.0]
        assert buf.pending_count == 0

    def test_flush_without_any_reference_discards(self):
        buf = InterpolationBuffer()
        buf.add_regular(0.5, KEY, 1.0)
        assert buf.unestimated == 1
        assert buf.flush() == []

    def test_counts(self):
        buf = InterpolationBuffer()
        buf.add_reference(0.0, 1.0)
        buf.add_regular(0.1, KEY, 1.0)
        buf.add_reference(0.2, 1.0)
        assert buf.references_seen == 2
        assert buf.regulars_seen == 1

    def test_estimates_carry_key_and_truth(self):
        buf = InterpolationBuffer()
        buf.add_reference(0.0, 1.0)
        buf.add_regular(0.5, KEY, 42.0)
        (e,) = buf.add_reference(1.0, 2.0)
        assert e.key == KEY
        assert e.true_delay == 42.0
        assert e.arrival == 0.5

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ValueError):
            InterpolationBuffer("spline")

    def test_previous_estimator(self):
        buf = InterpolationBuffer("previous")
        buf.add_reference(0.0, 10.0)
        buf.add_regular(0.9, KEY, 0.0)
        (e,) = buf.add_reference(1.0, 20.0)
        assert e.estimated == 10.0

    def test_nearest_estimator(self):
        buf = InterpolationBuffer("nearest")
        buf.add_reference(0.0, 10.0)
        buf.add_regular(0.2, KEY, 0.0)
        buf.add_regular(0.9, KEY, 0.0)
        near_prev, near_next = buf.add_reference(1.0, 20.0)
        assert near_prev.estimated == 10.0
        assert near_next.estimated == 20.0

    def test_all_estimators_registered(self):
        assert set(ESTIMATORS) == {"linear", "previous", "nearest"}

    @given(
        st.lists(st.tuples(times, delays), min_size=2, max_size=20),
        st.lists(times, min_size=1, max_size=50),
    )
    def test_every_regular_estimated_exactly_once(self, refs, regulars):
        """No packet is lost or double-counted by the buffer machinery."""
        refs = sorted(set(refs), key=lambda r: r[0])
        if len(refs) < 2:
            return
        buf = InterpolationBuffer()
        events = [("ref", t, d) for t, d in refs] + [("reg", t, None) for t in regulars]
        events.sort(key=lambda e: e[1])
        emitted = 0
        for kind, t, d in events:
            if kind == "ref":
                emitted += len(buf.add_reference(t, d))
            else:
                buf.add_regular(t, KEY, 0.0)
        emitted += len(buf.flush())
        assert emitted == len(regulars)

    @given(
        st.lists(st.tuples(times, delays), min_size=2, max_size=20),
        st.lists(times, min_size=1, max_size=50),
    )
    def test_estimates_bounded_by_neighbor_references(self, refs, regulars):
        """Every linear estimate lies within [min, max] of all ref delays."""
        refs = sorted(set(refs), key=lambda r: r[0])
        if len(refs) < 2:
            return
        lo = min(d for _, d in refs)
        hi = max(d for _, d in refs)
        buf = InterpolationBuffer()
        events = [("ref", t, d) for t, d in refs] + [("reg", t, None) for t in regulars]
        events.sort(key=lambda e: e[1])
        estimates = []
        for kind, t, d in events:
            if kind == "ref":
                estimates.extend(buf.add_reference(t, d))
            else:
                buf.add_regular(t, KEY, 0.0)
        estimates.extend(buf.flush())
        for e in estimates:
            assert lo - 1e-9 <= e.estimated <= hi + 1e-9
