"""Tests for the trace container."""

import numpy as np
import pytest

from repro.net.addressing import ip_to_int
from repro.net.packet import Packet, PacketKind
from repro.traffic.trace import Trace


def pkt(ts, src="10.1.0.1", dst="10.2.0.1", size=100, sport=1):
    return Packet(src=ip_to_int(src), dst=ip_to_int(dst), sport=sport, size=size, ts=ts)


class TestTraceBasics:
    def test_sorted_check(self):
        with pytest.raises(ValueError):
            Trace([pkt(1.0), pkt(0.5)])

    def test_len_iter_getitem(self):
        t = Trace([pkt(0.0), pkt(1.0)])
        assert len(t) == 2
        assert [p.ts for p in t] == [0.0, 1.0]
        assert t[1].ts == 1.0

    def test_duration_and_bytes(self):
        t = Trace([pkt(0.0, size=100), pkt(2.5, size=200)])
        assert t.duration == 2.5
        assert t.total_bytes == 300

    def test_empty_trace(self):
        t = Trace([])
        assert t.duration == 0.0
        assert t.mean_rate_bps() == 0.0

    def test_mean_rate(self):
        t = Trace([pkt(0.0, size=125), pkt(1.0, size=125)])
        assert t.mean_rate_bps() == pytest.approx(2000.0)

    def test_n_flows(self):
        t = Trace([pkt(0.0, sport=1), pkt(0.1, sport=1), pkt(0.2, sport=2)])
        assert t.n_flows == 2


class TestTransformations:
    def test_clone_packets_independent(self):
        t = Trace([pkt(0.0)])
        clones = t.clone_packets()
        clones[0].dropped = True
        assert not t[0].dropped

    def test_slice_time(self):
        t = Trace([pkt(0.0), pkt(1.0), pkt(2.0)])
        s = t.slice_time(0.5, 1.5)
        assert [p.ts for p in s] == [1.0]

    def test_remap_addresses(self):
        t = Trace([pkt(0.0)])
        r = t.remap_addresses(lambda s, d: (s + 1, d + 2))
        assert r[0].src == t[0].src + 1
        assert r[0].dst == t[0].dst + 2
        assert t[0].src == ip_to_int("10.1.0.1")  # original untouched

    def test_with_kind(self):
        t = Trace([pkt(0.0)])
        c = t.with_kind(PacketKind.CROSS)
        assert c[0].is_cross and t[0].is_regular

    def test_merge_sorts(self):
        a = Trace([pkt(0.0), pkt(2.0)])
        b = Trace([pkt(1.0), pkt(3.0)])
        m = Trace.merge([a, b])
        assert [p.ts for p in m] == [0.0, 1.0, 2.0, 3.0]


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, small_trace):
        path = str(tmp_path / "trace.npz")
        small_trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == len(small_trace)
        for a, b in zip(small_trace, loaded):
            assert a.flow_key == b.flow_key
            assert a.size == b.size
            assert a.ts == pytest.approx(b.ts)
            assert a.kind == b.kind

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = str(tmp_path / "bad.npz")
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ValueError):
            Trace.load(path)
