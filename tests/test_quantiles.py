"""Tests for the P² streaming quantile estimator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.quantiles import FlowQuantileTable, P2Quantile

KEY = (1, 2, 3, 4, 6)


class TestP2Quantile:
    def test_fewer_than_five_samples_exact(self):
        est = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            est.add(v)
        assert est.estimate == 2.0

    def test_no_samples_raises(self):
        with pytest.raises(ValueError):
            P2Quantile(0.5).estimate

    def test_median_of_uniform(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 1, 20_000)
        est = P2Quantile(0.5)
        for v in values:
            est.add(float(v))
        assert est.estimate == pytest.approx(np.quantile(values, 0.5), abs=0.02)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.95, 0.99])
    def test_quantiles_of_exponential(self, q):
        """Heavy-ish tail, like queueing delays."""
        rng = np.random.default_rng(1)
        values = rng.exponential(100e-6, 50_000)
        est = P2Quantile(q)
        for v in values:
            est.add(float(v))
        exact = np.quantile(values, q)
        assert est.estimate == pytest.approx(exact, rel=0.10)

    def test_estimate_within_observed_range(self):
        rng = np.random.default_rng(2)
        values = rng.normal(10.0, 3.0, 5000)
        est = P2Quantile(0.95)
        for v in values:
            est.add(float(v))
        assert values.min() <= est.estimate <= values.max()

    def test_invalid_quantile(self):
        for q in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                P2Quantile(q)

    def test_count_tracks_samples(self):
        est = P2Quantile(0.5)
        for i in range(17):
            est.add(float(i))
        assert est.count == 17

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                    min_size=20, max_size=300, unique=True),
           st.sampled_from([0.25, 0.5, 0.9]),
           st.randoms(use_true_random=False))
    def test_rank_error_bounded(self, values, q, rng):
        """The P² estimate's rank in the sorted data is near q (a standard
        correctness criterion for streaming quantile sketches).

        The value *set* is adversarial but the arrival order is randomized:
        like any constant-memory sketch (markers move at most one rank per
        sample), P² has no worst-case guarantee under adversarial
        *orderings* — e.g. feeding the 25 largest values first leaves the
        markers stranded — and its classical analysis assumes exchangeable
        streams.  Within the warm-up buffer the estimate is exact by
        construction.  Distinct values only: with heavy ties the estimate
        can land in empty gaps, where rank is ill-defined."""
        rng.shuffle(values)
        est = P2Quantile(q)
        for v in values:
            est.add(v)
        ordered = sorted(values)
        import bisect

        # with duplicates the estimate covers a rank *interval*; require the
        # target quantile to lie near that interval (loose bound: P² on
        # small streams)
        lo = bisect.bisect_left(ordered, est.estimate) / len(ordered)
        hi = bisect.bisect_right(ordered, est.estimate) / len(ordered)
        assert lo - 0.35 <= q <= hi + 0.35

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                    min_size=1, max_size=P2Quantile.WARMUP, unique=True),
           st.sampled_from([0.25, 0.5, 0.9, 0.99]))
    def test_exact_within_warmup(self, values, q):
        """Any stream that fits the warm-up buffer is answered exactly,
        regardless of arrival order."""
        est = P2Quantile(q)
        for v in values:
            est.add(v)
        ordered = sorted(values)
        import math

        index = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
        assert est.estimate == ordered[index]


class TestFlowQuantileTable:
    def test_per_flow_estimates(self):
        table = FlowQuantileTable(quantiles=(0.5,))
        for v in (1.0, 2.0, 3.0):
            table.add(KEY, v)
        assert table.get(KEY)[0.5] == 2.0
        assert table.get((9, 9, 9, 9, 6)) is None

    def test_multiple_quantiles(self):
        table = FlowQuantileTable(quantiles=(0.5, 0.95))
        rng = np.random.default_rng(3)
        for v in rng.exponential(1.0, 10_000):
            table.add(KEY, float(v))
        row = table.get(KEY)
        assert row[0.95] > row[0.5]

    def test_len_contains_items(self):
        table = FlowQuantileTable()
        table.add(KEY, 1.0)
        assert len(table) == 1 and KEY in table
        assert dict(table.items())[KEY][0.5] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowQuantileTable(quantiles=())
        with pytest.raises(ValueError):
            FlowQuantileTable(quantiles=(1.5,))


class TestReceiverQuantiles:
    def test_receiver_tracks_tail_estimates(self):
        """End-to-end: receiver with quantiles enabled produces per-flow
        p95 estimates close to per-flow true p95."""
        from repro.core.demux import SingleSenderDemux
        from repro.core.receiver import RliReceiver
        from repro.net.packet import Packet, PacketKind

        rng = np.random.default_rng(4)
        receiver = RliReceiver(SingleSenderDemux(1), quantiles=(0.5, 0.95))
        t = 0.0
        # alternating refs and regulars with a slowly varying delay level
        for i in range(4000):
            t += 1e-4
            level = 100e-6 * (1 + 0.5 * np.sin(t * 20))
            if i % 10 == 0:
                ref = Packet(src=0, dst=0, kind=PacketKind.REFERENCE,
                             sender_id=1, ref_timestamp=t - level)
                receiver.observe(ref, t)
            else:
                p = Packet(src=1, dst=2, sport=i % 5, size=100)
                p.tap_time = t - level
                receiver.observe(p, t)
        receiver.finalize()
        for key, row in receiver.flow_estimated_quantiles.items():
            truth = receiver.flow_true_quantiles.get(key)
            assert row[0.95] == pytest.approx(truth[0.95], rel=0.15)

    def test_quantiles_off_by_default(self):
        from repro.core.demux import SingleSenderDemux
        from repro.core.receiver import RliReceiver

        receiver = RliReceiver(SingleSenderDemux(1))
        assert receiver.flow_estimated_quantiles is None
