"""Unit tests for flow-hash sharding and observation-log replay."""

import pytest

from repro.core.flowstats import FlowStatsTable, StreamingStats
from repro.core.replay import (
    merge_shard_tables,
    pooled_stats,
    replay_observations,
)
from repro.core.receiver import REF_OBS, REG_OBS
from repro.traffic.divider import flow_shard
from repro.traffic.synthetic import TraceConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TraceConfig(duration=0.5, n_packets=2000), seed=11)


class TestFlowShard:
    def test_stable_and_in_range(self):
        key = (167837697, 167903233, 4242, 80, 6)
        assert flow_shard(key, 4) == flow_shard(key, 4)
        for n in (1, 2, 3, 7):
            assert 0 <= flow_shard(key, n) < n

    def test_single_shard_is_identity(self):
        assert flow_shard((1, 2, 3, 4, 5), 1) == 0

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            flow_shard((1, 2, 3, 4, 5), 0)

    def test_spreads_flows(self, trace):
        counts = [0, 0, 0, 0]
        for key in {p.flow_key for p in trace}:
            counts[flow_shard(key, 4)] += 1
        assert all(c > 0 for c in counts)
        assert max(counts) < 2 * min(counts) + 10  # roughly balanced

    def test_partitions_a_trace_exhaustively(self, trace):
        """Every flow lands in exactly one shard — a true partition."""
        keys = {p.flow_key for p in trace}
        shards = [{k for k in keys if flow_shard(k, 3) == s} for s in range(3)]
        assert set().union(*shards) == keys
        for i in range(3):
            for j in range(i + 1, 3):
                assert not (shards[i] & shards[j])


def synthetic_log():
    """A two-stream log: refs bracketing regulars from three flows."""
    a, b, c = (1, 9, 1, 1, 6), (2, 9, 2, 2, 6), (3, 9, 3, 3, 6)
    return [
        (REF_OBS, 0, 0.010, 20e-6),
        (REG_OBS, 0, 0.012, a, 25e-6),
        (REG_OBS, 0, 0.014, b, 28e-6),
        (REF_OBS, 0, 0.020, 30e-6),
        (REG_OBS, 1, 0.021, c, 50e-6),
        (REF_OBS, 1, 0.030, 55e-6),
        (REG_OBS, 0, 0.031, a, 31e-6),  # tail: resolved one-sided at flush
    ]


class TestReplay:
    def test_full_replay_builds_tables(self):
        tables = replay_observations(synthetic_log())
        assert len(tables.true) == 3
        assert len(tables.estimated) == 3
        assert tables.unestimated == 0
        a = tables.estimated.get((1, 9, 1, 1, 6))
        assert a.count == 2  # interpolated + flushed tail

    def test_sharded_union_equals_full(self):
        full = replay_observations(synthetic_log())
        parts = [replay_observations(synthetic_log(), shard=s, n_shards=3)
                 for s in range(3)]
        merged_true = merge_shard_tables(p.true for p in parts)
        merged_est = merge_shard_tables(p.estimated for p in parts)
        for key, stats in full.true.items():
            assert merged_true.get(key).mean == stats.mean
            assert merged_true.get(key).count == stats.count
        for key, stats in full.estimated.items():
            assert merged_est.get(key).mean == stats.mean

    def test_bad_shard_rejected(self):
        with pytest.raises(ValueError):
            replay_observations(synthetic_log(), shard=3, n_shards=3)

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            replay_observations([(7, 0, 0.0, 0.0)])

    def test_receiver_log_replays_to_identical_tables(self, tiny_workload):
        """A recorded pipeline receiver replays to the exact tables the
        live receiver accumulated."""
        from repro.experiments.workloads import run_condition

        log = []
        sender = tiny_workload.make_sender("static")
        receiver = tiny_workload.make_receiver(observation_log=log)
        from repro.sim.pipeline import TwoSwitchPipeline

        TwoSwitchPipeline(tiny_workload.pipeline_config).run(
            regular=tiny_workload.regular.clone_packets(),
            cross=tiny_workload.cross_arrivals("random", 0.67),
            sender=sender,
            receiver=receiver,
            duration=tiny_workload.cfg.duration,
        )
        receiver.finalize()
        replayed = replay_observations(log)
        assert len(replayed.true) == len(receiver.flow_true)
        for key, stats in receiver.flow_true.items():
            assert replayed.true.get(key).mean == stats.mean
        for key, stats in receiver.flow_estimated.items():
            mine = replayed.estimated.get(key)
            assert mine.count == stats.count
            assert mine.mean == stats.mean


class TestMergeHelpers:
    def test_merge_orders_keys(self):
        t1, t2 = FlowStatsTable(), FlowStatsTable()
        t2.add((1, 0, 0, 0, 0), 1e-6)
        t1.add((2, 0, 0, 0, 0), 2e-6)
        merged = merge_shard_tables([t1, t2])
        assert list(merged.keys()) == [(1, 0, 0, 0, 0), (2, 0, 0, 0, 0)]

    def test_pooled_stats_sorted_fold(self):
        t = FlowStatsTable()
        t.add((5, 0, 0, 0, 0), 10e-6)
        t.add((1, 0, 0, 0, 0), 30e-6)
        pooled = pooled_stats(t)
        assert pooled.count == 2
        assert pooled.mean == pytest.approx(20e-6)

    def test_merge_folds_duplicate_keys(self):
        t1, t2 = FlowStatsTable(), FlowStatsTable()
        t1.add((1, 0, 0, 0, 0), 1e-6)
        t2.add((1, 0, 0, 0, 0), 3e-6)
        merged = merge_shard_tables([t1, t2])
        assert merged.get((1, 0, 0, 0, 0)).count == 2
