"""Tests for the full (every-router) RLI deployment and its comparison
against RLIR."""

import pytest

from repro.analysis.cdf import Ecdf
from repro.analysis.metrics import flow_mean_errors
from repro.core.full_rli import FullRliDeployment
from repro.core.injection import StaticInjection
from repro.core.localization import localize
from repro.core.rlir import RlirDeployment
from repro.sim.topology import FatTree, LinkParams
from repro.traffic.synthetic import TraceConfig, generate_fattree_trace


def build_fattree():
    return FatTree(4, LinkParams(rate_bps=40e6, buffer_bytes=128 * 1024,
                                 proc_delay=1e-6, prop_delay=0.5e-6))


def measured_trace(ft, n_packets=6000, seed=1):
    pairs = [(ft.host_address(0, 0, h), ft.host_address(1, 0, g))
             for h in range(2) for g in range(2)]
    cfg = TraceConfig(duration=1.0, n_packets=n_packets, mean_flow_pkts=12.0)
    return generate_fattree_trace(cfg, pairs, seed=seed, name="measured")


def run_full(ft=None, n=20, traces=None):
    ft = ft or build_fattree()
    deployment = FullRliDeployment(ft, src=(0, 0), dst=(1, 0),
                                   policy_factory=lambda: StaticInjection(n))
    result = deployment.run(traces or [measured_trace(ft)])
    return ft, deployment, result


class TestFullRli:
    def test_validation(self):
        ft = build_fattree()
        with pytest.raises(ValueError):
            FullRliDeployment(ft, src=(0, 0), dst=(0, 0))
        with pytest.raises(ValueError):
            FullRliDeployment(ft, src=(0, 0), dst=(0, 1))

    def test_segment_inventory(self):
        """k=4: 2 A-segments, 4 B, 2 C-receivers, 1 D-receiver."""
        _, deployment, result = run_full()
        names = set(result.receivers)
        assert {n for n in names if n.startswith("A:")} == {"A:edge->agg0", "A:edge->agg1"}
        assert len([n for n in names if n.startswith("B:")]) == 4
        assert len([n for n in names if n.startswith("C:")]) == 2
        assert [n for n in names if n.startswith("D:")] == ["D:aggs->edge"]

    def test_references_reach_every_segment(self):
        _, _, result = run_full()
        for name, receiver in result.receivers.items():
            assert receiver.references_accepted > 0, name

    def test_every_segment_tracks_truth(self):
        _, _, result = run_full(n=10)
        for name, receiver in result.receivers.items():
            if receiver.regulars_measured < 50:
                continue
            join = flow_mean_errors(receiver.flow_estimated, receiver.flow_true)
            assert join.errors, name
            # per-hop delays are tiny, so relative errors run higher; the
            # estimates must still be in the right ballpark
            assert Ecdf(join.errors).median < 1.0, name

    def test_hop_truths_sum_to_path_truth(self):
        """Per-flow: seg A + B + C + D true means ≈ the end-to-end delay
        (within the wire delays the segments exclude)."""
        ft, _, result = run_full()
        # pick a well-sampled flow from segment D
        key = max(result.receivers["D:aggs->edge"].flow_true.items(),
                  key=lambda kv: kv[1].count)[0]
        total = 0.0
        found = 0
        for name, receiver in result.receivers.items():
            stats = receiver.flow_true.get(key)
            if stats is not None:
                total += stats.mean
                found += 1
        assert found == 4  # one receiver per segment letter on its path
        # compare against delivery time at dst edge: total segment truth
        # accounts for everything except ~4 propagation delays
        # (cannot recompute here directly; assert it is positive and sane)
        assert total > 0

    def test_instance_count_exceeds_rlir(self):
        """Full deployment instruments strictly more interfaces than RLIR's
        k+2-per-interface-pair economy — the paper's cost argument."""
        from repro.core.placement import instances_tor_pair

        _, _, result = run_full()
        assert result.instance_count() > instances_tor_pair(4)

    def test_localizes_single_slow_queue(self):
        """Degrade ONE core egress link; full RLI pins that exact hop while
        RLIR can only name the containing multi-router segment."""
        ft = build_fattree()
        # slow down core(0,0) -> agg(pod1, 0) to a quarter rate
        core = ft.cores[0][0]
        victim_port = ft.port_toward(core, ft.aggs[1][0])
        core.ports[victim_port].queue.set_rate(10e6)

        _, _, result = run_full(ft=ft, n=10, traces=[measured_trace(ft, 8000)])
        report = localize(result.segments(), factor=2.0, floor=5e-6,
                          min_samples=20)
        assert report.culprit == "C:cores->agg0"
        # RLIR on an identically degraded fabric blames its segment 2
        ft2 = build_fattree()
        core2 = ft2.cores[0][0]
        core2.ports[ft2.port_toward(core2, ft2.aggs[1][0])].queue.set_rate(10e6)
        rlir = RlirDeployment(ft2, src=(0, 0), dst=(1, 0),
                              policy_factory=lambda: StaticInjection(10))
        rlir_result = rlir.run([measured_trace(ft2, 8000)])
        rlir_report = localize(rlir_result.segments(), factor=2.0,
                               floor=5e-6, min_samples=20)
        assert rlir_report.culprit == "seg2:to-dst-tor"

    def test_cannot_wire_twice(self):
        ft, deployment, _ = run_full()
        with pytest.raises(RuntimeError):
            deployment.run([measured_trace(ft, 100)])
