"""Tests for the distributed execution backend (`repro.distrib`).

Unit layer: protocol helpers (addresses, chunking, failures, progress) and
backend selection, no sockets.  Integration layer: real broker + worker
subprocesses over localhost TCP, asserting the ISSUE's acceptance
criteria — distributed results byte-identical to serial, including under
a forced mid-job worker death; fingerprint-mismatched workers rejected
with a clear error; exhausted retries surfacing structured failures.
"""

import os
import pickle
import subprocess
import sys

import pytest

from repro.distrib import (
    Broker,
    DistributedRunner,
    DistributedSweepError,
    JobFailure,
    ProgressPrinter,
    ProgressSnapshot,
)
from repro.distrib.protocol import (
    authkey_from_env,
    chunk_jobs,
    format_address,
    parse_address,
)
from repro.experiments.config import ExperimentConfig
from repro.runner import JobSpec, ParallelRunner, ResultCache, make_runner

POLL_TIMEOUT = 300.0  # driver watchdog: generous for slow CI boxes


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(scale=0.01, seed=7)


@pytest.fixture(scope="module")
def jobs(cfg):
    """Two independent fig4 conditions (the determinism suite's pair)."""
    return [
        JobSpec.from_config(cfg, "adaptive", "random", 0.67),
        JobSpec.from_config(cfg, "static", "random", 0.67),
    ]


@pytest.fixture(scope="module")
def serial_blobs(jobs):
    return [pickle.dumps(s) for s in ParallelRunner(jobs=1).run(jobs)]


@pytest.fixture(scope="module")
def cluster():
    """One shared 2-worker embedded cluster for the happy-path tests."""
    runner = DistributedRunner(workers=2, heartbeat_interval=0.5,
                               poll_timeout=POLL_TIMEOUT)
    yield runner
    runner.close()


# ----------------------------------------------------------------------
# unit: protocol helpers


class TestAddresses:
    def test_parse_host_port(self):
        assert parse_address("broker.example:7077") == ("broker.example", 7077)

    def test_parse_bare_port_binds_localhost(self):
        assert parse_address(":7077") == ("127.0.0.1", 7077)

    def test_parse_tuple_passthrough(self):
        assert parse_address(("h", 1)) == ("h", 1)

    def test_roundtrip(self):
        assert parse_address(format_address(("a", 2))) == ("a", 2)

    def test_rejects_garbage(self):
        for bad in ("nohost", "h:", "h:port"):
            with pytest.raises(ValueError):
                parse_address(bad)

    def test_authkey_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISTRIB_AUTHKEY", raising=False)
        default = authkey_from_env()
        monkeypatch.setenv("REPRO_DISTRIB_AUTHKEY", "sekrit")
        assert authkey_from_env() == b"sekrit"
        assert authkey_from_env("cli-wins") == b"cli-wins"
        monkeypatch.delenv("REPRO_DISTRIB_AUTHKEY")
        assert authkey_from_env() == default


class TestChunking:
    def test_unkeyed_jobs_are_singleton_chunks(self):
        chunks = chunk_jobs([(0, None, "a"), (1, None, "b")], n_workers=4)
        assert chunks == [[(0, "a")], [(1, "b")]]

    def test_keyed_group_splits_for_stealing(self):
        entries = [(i, "cond", f"shard{i}") for i in range(8)]
        chunks = chunk_jobs(entries, n_workers=2)
        # at most 2*workers chunks per group, every job exactly once
        assert len(chunks) == 4
        flat = [seq for chunk in chunks for seq, _ in chunk]
        assert flat == list(range(8))  # contiguous, deterministic order

    def test_small_group_stays_fine_grained(self):
        entries = [(i, "cfg", i) for i in range(3)]
        assert [len(c) for c in chunk_jobs(entries, n_workers=2)] == [1, 1, 1]

    def test_balanced_split(self):
        entries = [(i, "k", i) for i in range(7)]
        sizes = [len(c) for c in chunk_jobs(entries, n_workers=1)]
        assert sum(sizes) == 7
        assert max(sizes) - min(sizes) <= 1

    def test_interleaved_keys_group_across_gaps(self):
        entries = [(0, "x", 0), (1, None, 1), (2, "x", 2), (3, "x", 3),
                   (4, "x", 4), (5, "x", 5)]
        chunks = chunk_jobs(entries, n_workers=1)
        # the five "x" jobs group across the unkeyed gap, then split into
        # 2*workers chunks; the unkeyed job stays a singleton
        grouped = [c for c in chunks if len(c) > 1]
        assert grouped == [[(0, 0), (2, 2), (3, 3)], [(4, 4), (5, 5)]]
        assert [(1, 1)] in chunks


class TestFailures:
    def test_job_failure_str(self):
        failure = JobFailure(seq=3, attempts=2, reason="worker 9 died mid-chunk")
        assert "job #3" in str(failure)
        assert "2 attempt(s)" in str(failure)

    def test_sweep_error_lists_failures(self):
        err = DistributedSweepError([JobFailure(0, 3, "boom"),
                                     JobFailure(4, 3, "bang")])
        assert "2 sweep job(s)" in str(err)
        assert "boom" in str(err) and "bang" in str(err)
        assert [f.seq for f in err.failures] == [0, 4]


class TestProgress:
    def test_snapshot_roundtrip_and_format(self):
        snap = ProgressSnapshot.from_dict(
            {"total": 4, "done": 2, "running": 1, "queued": 1,
             "failed": 0, "workers": 2, "retries": 1, "junk": 9})
        line = snap.format()
        assert "done 2/4" in line and "retries 1" in line
        assert "FAILED" not in line
        assert "FAILED 1" in ProgressSnapshot(total=1, failed=1).format()

    def test_printer_dedupes_and_targets_stream(self):
        import io

        sink = io.StringIO()
        printer = ProgressPrinter(stream=sink)
        snap = ProgressSnapshot(total=2, done=1)
        printer(snap)
        printer(snap)  # identical: not repeated
        printer(ProgressSnapshot(total=2, done=2))
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[distrib] ")

    def test_format_health_and_hedges(self):
        snap = ProgressSnapshot.from_dict(
            {"total": 4, "done": 2, "running": 1, "queued": 1,
             "workers": 3, "hedges": 2,
             "worker_health": [(2, "ok"), (3, "slow"), (5, "dead")]})
        line = snap.format()
        assert "hedges 2" in line
        assert "w3:slow" in line and "w5:dead" in line
        assert "w2" not in line, "healthy workers must not cost line width"
        # all-ok clusters stay exactly as terse as before
        quiet = ProgressSnapshot(total=4, done=4, workers=2,
                                 worker_health=((1, "ok"), (2, "ok")))
        assert "[" not in quiet.format() and "hedges" not in quiet.format()

    def test_printer_truncates_instead_of_wrapping(self):
        import io

        sink = io.StringIO()
        printer = ProgressPrinter(stream=sink, width=40)
        busy = ProgressSnapshot(
            total=100, done=42, running=9, queued=49, workers=9, hedges=3,
            worker_health=tuple((i, "slow") for i in range(1, 10)))
        printer(busy)
        [line] = sink.getvalue().splitlines()
        assert len(line) == 40
        assert line.endswith("…")
        # two snapshots identical after truncation print once
        printer(ProgressSnapshot(
            total=100, done=42, running=9, queued=49, workers=9, hedges=3,
            worker_health=tuple((i, "slow") for i in range(1, 11))))
        assert len(sink.getvalue().splitlines()) == 1

    def test_printer_unlimited_when_not_a_tty(self):
        import io

        sink = io.StringIO()  # isatty() is False: redirected-log behavior
        printer = ProgressPrinter(stream=sink)
        busy = ProgressSnapshot(
            total=100, done=42, running=9, queued=49, workers=9,
            worker_health=tuple((i, "slow") for i in range(1, 40)))
        printer(busy)
        [line] = sink.getvalue().splitlines()
        assert line.endswith("]") and "…" not in line


class TestWorkerStderrRelay:
    """Regression: embedded worker stderr must not tear progress lines.

    Workers used to inherit the driver's stderr fd, so a worker writing
    (join notices, tracebacks) mid-update could intersperse bytes inside a
    :class:`ProgressPrinter` line.  The relay re-emits every worker line
    as a single labeled ``write()``, the same atomicity unit the printer
    itself uses.
    """

    class _WriteRecorder:
        """A stream recording each individual write() call."""

        def __init__(self):
            self.writes = []

        def write(self, text):
            self.writes.append(text)

        def flush(self):
            pass

    def test_relay_emits_whole_prefixed_lines_only(self):
        import io

        from repro.distrib.runner import _relay_stderr

        sink = self._WriteRecorder()
        # chunked source: iteration yields lines regardless of how the
        # worker buffered its writes; last line lacks the newline (a
        # truncated write at death)
        pipe = io.StringIO("joined broker as worker 3\n"
                           "Traceback (most recent call last):\n"
                           "  boom")
        _relay_stderr(pipe, "[worker 3] ", stream=sink)
        assert sink.writes == [
            "[worker 3] joined broker as worker 3\n",
            "[worker 3] Traceback (most recent call last):\n",
            "[worker 3]   boom\n",
        ]

    def test_concurrent_relays_and_printer_never_intersperse(self):
        import io
        import threading

        from repro.distrib.runner import _relay_stderr

        sink = self._WriteRecorder()
        printer = ProgressPrinter(stream=sink, prefix="[distrib] ")
        threads = [
            threading.Thread(target=_relay_stderr, args=(
                io.StringIO("".join(f"worker {w} line {i}\n" for i in range(50))),
                f"[worker {w}] ", sink))
            for w in range(2)
        ]
        for t in threads:
            t.start()
        for i in range(50):
            printer(ProgressSnapshot(total=100, done=i))
        for t in threads:
            t.join()
        # every write call is exactly one whole labeled line — interleaved
        # between writers perhaps, but never torn mid-line
        assert len(sink.writes) == 150
        for write in sink.writes:
            assert write.endswith("\n") and write.count("\n") == 1
            assert write.startswith(("[distrib] ", "[worker 0] ", "[worker 1] "))

    def test_embedded_worker_lines_are_labeled(self, jobs, serial_blobs, capfd):
        runner = DistributedRunner(workers=1, heartbeat_interval=0.5,
                                   poll_timeout=POLL_TIMEOUT)
        try:
            blobs = [pickle.dumps(s) for s in runner.run(jobs)]
        finally:
            runner.close()
        assert blobs == serial_blobs
        err = capfd.readouterr().err
        joined = [line for line in err.splitlines() if "joined broker" in line]
        assert joined and all(line.startswith("[worker 0] ") for line in joined)


class TestBackendSelection:
    def test_auto_maps_jobs(self):
        assert make_runner(jobs=1).backend == "serial"
        assert make_runner(jobs=3).backend == "process"

    def test_explicit_serial_ignores_jobs(self):
        runner = make_runner(backend="serial", jobs=8)
        assert runner.backend == "serial" and runner.jobs == 1

    def test_distributed_constructs_lazily(self):
        runner = make_runner(backend="distributed", jobs=3)
        assert runner.backend == "distributed"
        assert isinstance(runner, DistributedRunner)
        assert runner.workers == 3
        runner.close()  # nothing was started: close is a no-op

    def test_broker_implies_distributed(self):
        runner = make_runner(broker="h:1")
        assert runner.backend == "distributed"
        runner.close()

    def test_rejects_unknown_backend_and_misplaced_options(self):
        with pytest.raises(ValueError):
            make_runner(backend="threads")
        with pytest.raises(ValueError):
            make_runner(backend="process", jobs=2, broker="h:1")
        with pytest.raises(ValueError):
            make_runner(backend="serial", max_retries=3)


# ----------------------------------------------------------------------
# integration: real broker + worker subprocesses


class TestDistributedMatchesSerial:
    def test_byte_identical_and_progress(self, cluster, jobs, serial_blobs):
        snapshots = []
        cluster.progress = snapshots.append
        try:
            results = cluster.run(jobs)
        finally:
            cluster.progress = None
        assert [pickle.dumps(r) for r in results] == serial_blobs
        assert snapshots, "broker pushed no progress"
        final = snapshots[-1]
        assert (final.total, final.done, final.failed) == (2, 2, 0)
        dones = [s.done for s in snapshots]
        assert dones == sorted(dones)  # completion only moves forward

    def test_repeat_run_stays_identical(self, cluster, jobs, serial_blobs):
        results = cluster.run(jobs)
        assert [pickle.dumps(r) for r in results] == serial_blobs

    def test_cache_hits_skip_the_cluster(self, cluster, jobs, serial_blobs,
                                         tmp_path):
        cluster.cache = ResultCache(tmp_path)
        try:
            first = cluster.run(jobs)
            executed = cluster.executed
            again = cluster.run(jobs)
            assert cluster.executed == executed  # all hits, nothing submitted
            assert cluster.cache_hits == len(jobs)
        finally:
            cluster.cache = None
        assert [pickle.dumps(r) for r in first] == serial_blobs
        assert [pickle.dumps(r) for r in again] == serial_blobs

    def test_sharded_extension_study_identical(self, cluster, cfg):
        """Shard jobs ride the chunk envelope (one replay pass per chunk)
        and still merge bitwise-identical to the serial study."""
        from repro.experiments.extensions import run_multihop_ablation

        serial = run_multihop_ablation(cfg, hops=(1, 2))
        distributed = run_multihop_ablation(cfg, hops=(1, 2),
                                            runner=cluster, shards=3)
        assert serial == distributed
        assert pickle.dumps(serial) == pickle.dumps(distributed)


class TestFaultTolerance:
    def test_worker_death_requeues_and_output_identical(self, jobs, serial_blobs):
        runner = DistributedRunner(workers=2, heartbeat_interval=0.5,
                                   poll_timeout=POLL_TIMEOUT)
        try:
            # the doomed worker joins first => lowest id => first dispatch
            doomed = runner.spawn_worker(
                extra_env={"REPRO_WORKER_DIE_AFTER_CHUNKS": "1"})
            assert runner.wait_for_workers(1, timeout=60)
            runner.spawn_worker()
            assert runner.wait_for_workers(2, timeout=60)
            results = runner.run(jobs)
            assert doomed.wait(timeout=30) == 86  # it really died mid-job
            assert runner.retries_observed >= 1  # the requeue happened
            assert [pickle.dumps(r) for r in results] == serial_blobs
        finally:
            runner.close()

    def test_hung_worker_detected_by_heartbeat_and_requeued(
            self, jobs, serial_blobs):
        """A worker that goes silent (no crash, no EOF) is declared dead
        once heartbeats stop and its chunk reruns elsewhere.  Hedging is
        pinned off so the death/requeue path itself is what completes the
        sweep (with hedges on, a duplicate dispatch would usually rescue
        the chunk before the reaper fires — that path has its own tests)."""
        runner = DistributedRunner(workers=2, heartbeat_interval=0.3,
                                   heartbeat_timeout=2.0,
                                   max_hedges_per_chunk=0,
                                   poll_timeout=POLL_TIMEOUT)
        try:
            runner.spawn_worker(
                extra_env={"REPRO_WORKER_FREEZE_AFTER_CHUNKS": "1"})
            assert runner.wait_for_workers(1, timeout=60)
            runner.spawn_worker()
            assert runner.wait_for_workers(2, timeout=60)
            results = runner.run(jobs)
            assert runner.retries_observed >= 1
            assert [pickle.dumps(r) for r in results] == serial_blobs
        finally:
            runner.close()

    def test_partial_worker_join_fails_loudly(self, jobs):
        """A worker that crashes on spawn must fail the run with a clear
        partial-join error, not silently run at half the parallelism
        (the old _ensure_cluster waited for 1 worker regardless of
        how many were requested)."""

        class OneBadSpawn(DistributedRunner):
            sabotaged = False

            def spawn_worker(self, extra_env=None):
                if not OneBadSpawn.sabotaged:
                    OneBadSpawn.sabotaged = True
                    extra_env = dict(extra_env or {},
                                     REPRO_WORKER_FINGERPRINT="bogus")
                return super().spawn_worker(extra_env)

        runner = OneBadSpawn(workers=2, heartbeat_interval=0.5,
                             poll_timeout=POLL_TIMEOUT)
        try:
            with pytest.raises(RuntimeError,
                               match=r"1 of 2 workers joined"):
                runner.run(jobs)
        finally:
            runner.close()

    def test_exhausted_retries_surface_structured_failure(self, jobs):
        runner = DistributedRunner(workers=1, max_retries=0,
                                   heartbeat_interval=0.5,
                                   poll_timeout=POLL_TIMEOUT)
        try:
            runner.spawn_worker(
                extra_env={"REPRO_WORKER_DIE_AFTER_CHUNKS": "1"})
            assert runner.wait_for_workers(1, timeout=60)
            with pytest.raises(DistributedSweepError) as excinfo:
                runner.run(jobs[:1])
            failures = excinfo.value.failures
            assert [f.seq for f in failures] == [0]
            assert failures[0].attempts == 1
            assert "died" in failures[0].reason
        finally:
            runner.close()

    def test_job_exception_is_retried_then_surfaced(self, cfg):
        """A deterministically-raising job burns its retries and comes back
        as a structured failure, not a hang or a silent None."""
        # picklable and worker-importable, but guaranteed to raise: the
        # injection scheme does not exist
        bad_job = JobSpec.from_config(cfg, "bogus-scheme", "random", 0.67)
        runner = DistributedRunner(workers=1, max_retries=1,
                                   heartbeat_interval=0.5,
                                   poll_timeout=POLL_TIMEOUT)
        try:
            with pytest.raises(DistributedSweepError) as excinfo:
                runner.run([bad_job])
            failure = excinfo.value.failures[0]
            assert "unknown injection scheme" in failure.reason
            assert failure.attempts == 2  # initial dispatch + 1 retry
        finally:
            runner.close()


class TestFingerprintEnforcement:
    def test_mismatched_worker_rejected_with_clear_error(self):
        broker = Broker().start()
        try:
            env = os.environ.copy()
            src_root = os.path.join(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))), "src")
            env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
            env["REPRO_WORKER_FINGERPRINT"] = "deadbeef"
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", format_address(broker.address)],
                env=env, stderr=subprocess.PIPE, text=True)
            stderr = proc.stderr.read()
            proc.stderr.close()
            assert proc.wait(timeout=60) == 3
            assert "fingerprint mismatch" in stderr
            assert "deadbeef" in stderr
            assert broker.worker_count() == 0  # never admitted
        finally:
            broker.close()


class TestAuthkey:
    def test_embedded_cluster_with_explicit_authkey(self, jobs, serial_blobs):
        """An explicit cluster secret reaches the spawned workers too —
        broker and workers must agree or nothing would ever join."""
        runner = DistributedRunner(workers=1, authkey="private-test-key",
                                   heartbeat_interval=0.5,
                                   poll_timeout=POLL_TIMEOUT)
        try:
            results = runner.run(jobs[:1])
            assert pickle.dumps(results[0]) == serial_blobs[0]
        finally:
            runner.close()


class TestExternalBroker:
    def test_runner_drives_a_standalone_broker(self, jobs, serial_blobs):
        broker = Broker(heartbeat_timeout=10.0).start()
        runner = DistributedRunner(broker=format_address(broker.address),
                                   poll_timeout=POLL_TIMEOUT)
        try:
            runner.spawn_worker()  # a worker pointed at the external broker
            assert broker.wait_for_workers(1, timeout=60)
            results = runner.run(jobs[:1])
            assert pickle.dumps(results[0]) == serial_blobs[0]
        finally:
            runner.close()
            broker.close()
