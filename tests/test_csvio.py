"""Tests for CSV trace interchange."""

import pytest

from repro.net.packet import PacketKind
from repro.traffic.csvio import load_csv, save_csv
from repro.traffic.trace import Trace


class TestCsvRoundtrip:
    def test_roundtrip(self, tmp_path, small_trace):
        path = str(tmp_path / "t.csv")
        save_csv(small_trace, path)
        loaded = load_csv(path)
        assert len(loaded) == len(small_trace)
        for a, b in zip(small_trace, loaded):
            assert a.flow_key == b.flow_key
            assert a.size == b.size
            assert a.ts == pytest.approx(b.ts, abs=1e-9)
            assert a.kind == b.kind

    def test_without_kind_column(self, tmp_path, small_trace):
        path = str(tmp_path / "t.csv")
        save_csv(small_trace, path, include_kind=False)
        loaded = load_csv(path)
        assert all(p.kind == PacketKind.REGULAR for p in loaded)

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("ts,src\n0.0,10.0.0.1\n")
        with pytest.raises(ValueError, match="missing columns"):
            load_csv(str(path))

    def test_bad_row_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("ts,src,dst,sport,dport,proto,size\n"
                        "0.0,10.0.0.1,10.0.0.2,1,2,6,100\n"
                        "0.1,not-an-ip,10.0.0.2,1,2,6,100\n")
        with pytest.raises(ValueError, match="line 3"):
            load_csv(str(path))

    def test_unsorted_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("ts,src,dst,sport,dport,proto,size\n"
                        "1.0,10.0.0.1,10.0.0.2,1,2,6,100\n"
                        "0.5,10.0.0.1,10.0.0.2,1,2,6,100\n")
        with pytest.raises(ValueError, match="not time-sorted"):
            load_csv(str(path))

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.csv")
        save_csv(Trace([]), path)
        assert len(load_csv(path)) == 0
