"""Tests for cross-traffic injection models and calibration."""

import numpy as np
import pytest

from repro.net.addressing import ip_to_int
from repro.net.packet import Packet, PacketKind
from repro.traffic.crosstraffic import (
    BurstyModel,
    CalibrationError,
    UniformModel,
    calibrate_selection_probability,
)
from repro.traffic.trace import Trace


def make_cross_trace(n=5000, duration=1.0, size=500):
    rng = np.random.default_rng(1)
    times = np.sort(rng.uniform(0, duration, n))
    packets = [
        Packet(src=ip_to_int("10.9.0.1"), dst=ip_to_int("10.10.0.1"),
               sport=i % 100, size=size, ts=float(t))
        for i, t in enumerate(times)
    ]
    return Trace(packets, name="cross", check_sorted=False)


class TestUniformModel:
    def test_selection_fraction(self):
        trace = make_cross_trace()
        out = UniformModel(0.3, seed=0).arrivals(trace)
        assert 0.25 * len(trace) < len(out) < 0.35 * len(trace)

    def test_prob_one_selects_all(self):
        trace = make_cross_trace(n=100)
        assert len(UniformModel(1.0).arrivals(trace)) == 100

    def test_prob_zero_selects_none(self):
        trace = make_cross_trace(n=100)
        assert UniformModel(0.0).arrivals(trace) == []

    def test_timestamps_unchanged_and_kind_cross(self):
        trace = make_cross_trace(n=200)
        for t, p in UniformModel(0.5, seed=1).arrivals(trace):
            assert p.is_cross
            assert t == p.ts

    def test_clones_not_originals(self):
        trace = make_cross_trace(n=50)
        out = UniformModel(1.0).arrivals(trace)
        out[0][1].dropped = True
        assert not trace[0].dropped

    def test_seeded_reproducible(self):
        trace = make_cross_trace(n=500)
        a = UniformModel(0.4, seed=5).arrivals(trace)
        b = UniformModel(0.4, seed=5).arrivals(trace)
        assert [t for t, _ in a] == [t for t, _ in b]

    def test_invalid_prob(self):
        with pytest.raises(ValueError):
            UniformModel(1.5)


class TestBurstyModel:
    def test_arrivals_confined_to_on_windows(self):
        trace = make_cross_trace(duration=1.0)
        model = BurstyModel(prob=1.0, on_duration=0.1, period=0.5)
        for t, _ in model.arrivals(trace):
            assert (t % 0.5) <= 0.1 + 1e-12

    def test_same_prob_same_average_bytes(self):
        """Bursty and uniform deliver (nearly) the same bytes for one prob —
        the controlled-comparison property Figure 4(c) relies on."""
        trace = make_cross_trace(n=20_000)
        uniform = UniformModel(0.5, seed=2).arrivals(trace)
        bursty = BurstyModel(0.5, on_duration=0.2, period=0.4, seed=2).arrivals(trace)
        ub = sum(p.size for _, p in uniform)
        bb = sum(p.size for _, p in bursty)
        assert bb == pytest.approx(ub, rel=0.02)

    def test_sorted_output(self):
        trace = make_cross_trace()
        out = BurstyModel(0.8, 0.1, 0.3, seed=3).arrivals(trace)
        times = [t for t, _ in out]
        assert times == sorted(times)

    def test_compression_raises_instantaneous_rate(self):
        """Bytes inside ON windows arrive period/on times faster."""
        trace = make_cross_trace(n=20_000, duration=1.0)
        out = BurstyModel(1.0, on_duration=0.1, period=0.5, seed=0).arrivals(trace)
        first_window_bytes = sum(p.size for t, p in out if t < 0.1)
        total = sum(p.size for _, p in out)
        # two windows; each holds ~half the bytes in a tenth of the time
        assert first_window_bytes == pytest.approx(0.5 * total, rel=0.05)

    def test_empty_trace(self):
        assert BurstyModel(0.5, 0.1, 0.2).arrivals(Trace([])) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BurstyModel(0.5, on_duration=0.3, period=0.2)
        with pytest.raises(ValueError):
            BurstyModel(0.5, on_duration=0.0, period=0.2)
        with pytest.raises(ValueError):
            BurstyModel(-0.1, 0.1, 0.2)


class TestCalibration:
    def test_solves_target_utilization(self):
        trace = make_cross_trace(n=10_000, size=500)  # 5 MB total
        rate = 80e6  # 10 MB/s over 1 s
        p = calibrate_selection_probability(
            trace, regular_bytes=2_000_000, rate_bps=rate, duration=1.0,
            target_utilization=0.6)
        # need 6 MB total -> 4 MB of cross -> p = 0.8
        assert p == pytest.approx(0.8)

    def test_measured_utilization_close(self):
        """End-to-end: selected bytes actually hit the target on average."""
        trace = make_cross_trace(n=20_000, size=500)
        rate = 80e6
        regular = 2_000_000
        p = calibrate_selection_probability(trace, regular, rate, 1.0, 0.5)
        selected = UniformModel(p, seed=4).arrivals(trace)
        util = (regular + sum(q.size for _, q in selected)) / (rate / 8 * 1.0)
        assert util == pytest.approx(0.5, rel=0.03)

    def test_zero_needed_when_regular_suffices(self):
        trace = make_cross_trace(n=100)
        p = calibrate_selection_probability(trace, 10_000_000, 80e6, 1.0, 0.5)
        assert p == 0.0

    def test_cross_too_small_raises(self):
        trace = make_cross_trace(n=10, size=100)
        with pytest.raises(CalibrationError):
            calibrate_selection_probability(trace, 0, 80e6, 1.0, 0.99)

    def test_empty_cross_raises(self):
        with pytest.raises(CalibrationError):
            calibrate_selection_probability(Trace([]), 0, 80e6, 1.0, 0.5)

    def test_invalid_target(self):
        trace = make_cross_trace(n=10)
        with pytest.raises(ValueError):
            calibrate_selection_probability(trace, 0, 80e6, 1.0, 1.5)
