"""End-to-end tests of the RLIR deployment on a fat-tree.

These are the paper's architecture tests: references crafted per path,
upstream demux by prefix at the cores, downstream demux by marking or
reverse ECMP at the destination ToR, and per-flow estimates that track
ground truth across two segments.
"""

import pytest

from repro.analysis.metrics import flow_mean_errors
from repro.core.injection import StaticInjection
from repro.core.localization import localize
from repro.core.rlir import RlirDeployment
from repro.sim.topology import FatTree, LinkParams
from repro.traffic.synthetic import TraceConfig, generate_fattree_trace


def build_fattree():
    return FatTree(4, LinkParams(rate_bps=40e6, buffer_bytes=128 * 1024,
                                 proc_delay=1e-6, prop_delay=0.5e-6))


def measured_trace(ft, n_packets=6000, seed=1):
    """Flows from ToR (0,0) hosts to ToR (1,0) hosts."""
    pairs = [(ft.host_address(0, 0, h), ft.host_address(1, 0, g))
             for h in range(2) for g in range(2)]
    cfg = TraceConfig(duration=1.0, n_packets=n_packets, mean_flow_pkts=12.0)
    return generate_fattree_trace(cfg, pairs, seed=seed, name="measured")


def background_trace(ft, n_packets=4000, seed=2):
    """Cross traffic from other ToRs, sharing cores and the dst ToR."""
    pairs = [(ft.host_address(2, e, h), ft.host_address(1, 0, g))
             for e in range(2) for h in range(2) for g in range(2)]
    pairs += [(ft.host_address(3, e, h), ft.host_address(0, 1, g))
              for e in range(2) for h in range(2) for g in range(2)]
    cfg = TraceConfig(duration=1.0, n_packets=n_packets, mean_flow_pkts=12.0)
    return generate_fattree_trace(cfg, pairs, seed=seed, name="background")


def deploy_and_run(demux_method="marking", n=20, with_background=True, ft=None):
    ft = ft or build_fattree()
    deployment = RlirDeployment(
        ft, src=(0, 0), dst=(1, 0),
        policy_factory=lambda: StaticInjection(n),
        demux_method=demux_method,
    )
    traces = [measured_trace(ft)]
    if with_background:
        traces.append(background_trace(ft))
    result = deployment.run(traces)
    return ft, deployment, result


class TestRlirDeployment:
    def test_validation(self):
        ft = build_fattree()
        with pytest.raises(ValueError):
            RlirDeployment(ft, src=(0, 0), dst=(0, 0))
        with pytest.raises(ValueError):
            RlirDeployment(ft, src=(0, 0), dst=(0, 1))  # same pod
        with pytest.raises(ValueError):
            RlirDeployment(ft, src=(0, 0), dst=(1, 0), demux_method="magic")

    def test_instances_wired(self):
        _, deployment, _ = deploy_and_run()
        assert len(deployment.tor_senders) == 2  # k/2 uplinks
        assert len(deployment.core_receivers) == 4  # (k/2)^2 cores
        assert len(deployment.core_senders) == 4
        assert deployment.dst_receiver is not None

    def test_references_flow_on_both_segments(self):
        _, deployment, result = deploy_and_run()
        seg1_refs = sum(r.references_accepted for r in result.seg1_receivers.values())
        assert seg1_refs > 0
        assert result.seg2_receiver.references_accepted > 0

    def test_segment1_measures_all_measured_flows(self):
        ft, _, result = deploy_and_run()
        est = result.segment1_estimated()
        true = result.segment1_true()
        # every inter-pod flow from the src ToR climbs through some core
        assert len(true) > 50
        assert len(est) == pytest.approx(len(true), abs=5)

    def test_segment_estimates_track_truth(self):
        """Median per-flow relative error is small on both segments."""
        from repro.analysis.cdf import Ecdf

        _, _, result = deploy_and_run(n=10)
        j1 = flow_mean_errors(result.segment1_estimated(), result.segment1_true())
        j2 = flow_mean_errors(result.segment2_estimated(), result.segment2_true())
        assert len(j1.errors) > 30
        assert len(j2.errors) > 30
        assert Ecdf(j1.errors).median < 0.5
        assert Ecdf(j2.errors).median < 0.5

    def test_background_flows_not_measured_downstream(self):
        ft, _, result = deploy_and_run()
        src_prefix = ft.tor_prefix(0, 0)
        for key, _ in result.seg2_receiver.flow_estimated.items():
            assert key[0] in src_prefix  # only src-ToR flows measured

    def test_background_traffic_inflates_true_delays(self):
        _, _, quiet = deploy_and_run(with_background=False)
        _, _, busy = deploy_and_run(with_background=True)

        def pooled_mean(table):
            from repro.core.flowstats import StreamingStats
            s = StreamingStats()
            for _, st in table.items():
                s.merge(st)
            return s.mean

        assert pooled_mean(busy.segment2_true()) > pooled_mean(quiet.segment2_true())

    def test_end_to_end_combines_segments(self):
        _, _, result = deploy_and_run(n=10)
        rows = result.end_to_end()
        assert len(rows) > 30
        errors = [abs(est - true) / true for _, est, true in rows if true > 0]
        errors.sort()
        assert errors[len(errors) // 2] < 0.5  # median

    def test_marking_and_reverse_ecmp_agree(self):
        """The two downstream demux options classify identically, so they
        produce identical per-flow sample counts."""
        ft1, _, by_mark = deploy_and_run("marking")
        ft2, _, by_recmp = deploy_and_run("reverse-ecmp")
        marked = {k: s.count for k, s in by_mark.seg2_receiver.flow_estimated.items()}
        recomputed = {k: s.count for k, s in by_recmp.seg2_receiver.flow_estimated.items()}
        assert marked == recomputed

    def test_reverse_ecmp_needs_no_marking_support(self):
        """With reverse ECMP the cores never touch the ToS byte."""
        ft, _, _ = deploy_and_run("reverse-ecmp")
        for row in ft.cores:
            for core in row:
                assert core.mark == 0

    def test_cannot_wire_twice(self):
        ft = build_fattree()
        deployment = RlirDeployment(ft, src=(0, 0), dst=(1, 0))
        deployment.run([measured_trace(ft, n_packets=200)])
        with pytest.raises(RuntimeError):
            deployment.run([measured_trace(ft, n_packets=200)])

    def test_localization_prefers_congested_segment(self):
        """Heavy background fan-in toward the destination ToR congests the
        downstream segment; localization ranks seg2 above every seg1."""
        ft = build_fattree()
        deployment = RlirDeployment(ft, src=(0, 0), dst=(1, 0),
                                    policy_factory=lambda: StaticInjection(20))
        light = measured_trace(ft, n_packets=2500)
        # incast: pods 2 and 3 all sending to the destination ToR's hosts
        pairs = [(ft.host_address(p, e, h), ft.host_address(1, 0, g))
                 for p in (2, 3) for e in range(2) for h in range(2)
                 for g in range(2)]
        cfg = TraceConfig(duration=1.0, n_packets=14_000, mean_flow_pkts=12.0)
        incast = generate_fattree_trace(cfg, pairs, seed=5, name="incast")
        result = deployment.run([light, incast])
        report = localize(result.segments(), factor=1.5, floor=1e-6, min_samples=5)
        seg2 = next(s for s in report.summaries if s.name.startswith("seg2"))
        seg1_means = [s.mean for s in report.summaries if s.name.startswith("seg1")]
        assert seg2.mean > max(seg1_means)
