"""Tests for the IEEE 1588-style synchronization substrate."""

import pytest

from repro.sim.ptp import PtpSession


class TestExchange:
    def test_symmetric_path_exact(self):
        session = PtpSession(true_offset=50e-6, base_delay_ms=5e-6,
                             base_delay_sm=5e-6)
        exchange = session.exchange(0.0)
        assert exchange.offset_estimate == pytest.approx(50e-6)

    def test_asymmetry_error_floor(self):
        """offset error = (d_ms - d_sm)/2 — the classic PTP limit."""
        session = PtpSession(true_offset=50e-6, base_delay_ms=9e-6,
                             base_delay_sm=3e-6)
        exchange = session.exchange(0.0)
        assert exchange.offset_estimate - 50e-6 == pytest.approx(3e-6)

    def test_round_trip_excludes_offset(self):
        for offset in (0.0, 1e-3, -1e-3):
            session = PtpSession(true_offset=offset, base_delay_ms=5e-6,
                                 base_delay_sm=7e-6)
            assert session.exchange(0.0).round_trip == pytest.approx(12e-6)


class TestSynchronize:
    def test_clean_path_recovers_offset(self):
        result = PtpSession(true_offset=123e-6).synchronize()
        assert result.residual_error == pytest.approx(0.0, abs=1e-12)

    def test_min_filter_beats_single_exchange_under_jitter(self):
        noisy = PtpSession(true_offset=100e-6, queue_jitter=50e-6, seed=1)
        single = abs(noisy.exchange(0.0).offset_estimate - 100e-6)
        filtered = abs(PtpSession(true_offset=100e-6, queue_jitter=50e-6,
                                  seed=1).synchronize(rounds=64).residual_error)
        # averaging min-RTT exchanges suppresses one-sided queueing noise
        assert filtered < max(single, 20e-6)

    def test_corrected_clock_offset_is_negated_residual(self):
        session = PtpSession(true_offset=100e-6, base_delay_ms=8e-6,
                             base_delay_sm=2e-6)
        result = session.synchronize(rounds=4)
        clock = result.corrected_clock()
        assert clock.now(1.0) - 1.0 == pytest.approx(-result.residual_error)

    def test_corrected_clock_feeds_receiver(self):
        """The residual sync error shows up as a bias in RLI delay samples
        — wiring PTP output into the measurement plane."""
        from repro.core.demux import SingleSenderDemux
        from repro.core.receiver import RliReceiver
        from repro.net.packet import Packet, PacketKind

        result = PtpSession(true_offset=1e-3, base_delay_ms=30e-6,
                            base_delay_sm=10e-6).synchronize(rounds=4)
        receiver = RliReceiver(SingleSenderDemux(1), clock=result.corrected_clock())
        ref = Packet(src=0, dst=0, kind=PacketKind.REFERENCE, sender_id=1,
                     ref_timestamp=0.0)
        receiver.observe(ref, 100e-6)  # true delay 100us
        buffer = receiver._buffers[1]
        measured_delay = buffer._last_ref[1]
        # bias = -residual = -(d_ms-d_sm)/2 = -10us
        assert measured_delay == pytest.approx(100e-6 - 10e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            PtpSession(0.0, base_delay_ms=-1e-6)
        with pytest.raises(ValueError):
            PtpSession(0.0, queue_jitter=-1.0)
        with pytest.raises(ValueError):
            PtpSession(0.0).synchronize(rounds=0)
        with pytest.raises(ValueError):
            PtpSession(0.0).synchronize(keep_best=0)

    def test_seeded_reproducible(self):
        a = PtpSession(1e-6, queue_jitter=1e-5, seed=3).synchronize()
        b = PtpSession(1e-6, queue_jitter=1e-5, seed=3).synchronize()
        assert a.estimated_offset == b.estimated_offset
