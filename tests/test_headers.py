"""Tests for ToS mark encoding (RLIR packet-marking support)."""

import pytest
from hypothesis import given, strategies as st

from repro.net.headers import MAX_MARK, MARK_UNSET, clear_mark, decode_mark, encode_mark


class TestMarks:
    def test_roundtrip(self):
        assert decode_mark(encode_mark(0, 5)) == 5

    def test_unmarked_reads_unset(self):
        assert decode_mark(0) == MARK_UNSET

    def test_preserves_ecn_bits(self):
        tos = 0b11  # ECN bits set
        marked = encode_mark(tos, 7)
        assert marked & 0b11 == 0b11
        assert decode_mark(marked) == 7

    def test_clear_mark(self):
        marked = encode_mark(0b01, 9)
        assert clear_mark(marked) == 0b01
        assert decode_mark(clear_mark(marked)) == MARK_UNSET

    def test_mark_zero_rejected(self):
        with pytest.raises(ValueError):
            encode_mark(0, 0)

    def test_mark_too_large_rejected(self):
        with pytest.raises(ValueError):
            encode_mark(0, MAX_MARK + 1)

    def test_remark_overwrites(self):
        tos = encode_mark(0, 3)
        assert decode_mark(encode_mark(tos, 12)) == 12

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=1, max_value=MAX_MARK))
    def test_roundtrip_property(self, tos, mark):
        marked = encode_mark(tos, mark)
        assert 0 <= marked <= 255
        assert decode_mark(marked) == mark
        assert marked & 0b11 == tos & 0b11
