"""Correctness of the content-addressed result cache.

Covers the contract ``repro.runner`` relies on: a key is a pure function of
(job token, code fingerprint, format version); hits skip execution;
changing any config knob, any seed, or the code fingerprint misses; a
corrupted on-disk entry degrades to a miss instead of poisoning a sweep;
and concurrent writers — many processes hammering one cache directory, the
distributed backend's normal condition — never corrupt or double-write an
entry (O_EXCL publish, first writer wins).
"""

import multiprocessing
import pickle
from dataclasses import dataclass, field

import pytest

from repro.experiments.config import ExperimentConfig
from repro.runner import JobSpec, ParallelRunner, ResultCache
from repro.runner.cache import CACHE_VERSION, canonical_json, code_fingerprint


@dataclass
class CountingJob:
    """A trivially cheap job that records how often it actually ran."""

    token: str
    runs: list = field(default_factory=list)

    def cache_token(self):
        return {"kind": "counting", "token": self.token}

    def run(self):
        self.runs.append(1)
        return f"result:{self.token}"


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache")


class TestKeying:
    def test_key_is_stable(self, cache):
        token = {"a": 1, "b": [1, 2]}
        assert cache.key(token) == cache.key({"b": [1, 2], "a": 1})

    def test_key_changes_with_token(self, cache):
        assert cache.key({"seed": 1}) != cache.key({"seed": 2})

    def test_key_changes_with_code_fingerprint(self, tmp_path):
        a = ResultCache(root=tmp_path, fingerprint="aaaa")
        b = ResultCache(root=tmp_path, fingerprint="bbbb")
        assert a.key({"x": 1}) != b.key({"x": 1})

    def test_condition_key_covers_config_and_seeds(self, cache):
        cfg = ExperimentConfig(scale=0.01, seed=7)
        base = cache.key(JobSpec.from_config(cfg, "static", "random", 0.93).cache_token())
        # different condition axis
        assert base != cache.key(
            JobSpec.from_config(cfg, "adaptive", "random", 0.93).cache_token())
        # different per-run seed
        assert base != cache.key(
            JobSpec.from_config(cfg, "static", "random", 0.93, run_seed=1).cache_token())
        # different trace seed
        cfg2 = ExperimentConfig(scale=0.01, seed=8)
        assert base != cache.key(
            JobSpec.from_config(cfg2, "static", "random", 0.93).cache_token())
        # any mutated config knob
        cfg3 = ExperimentConfig(scale=0.01, seed=7)
        cfg3.buffer_bytes *= 2
        assert base != cache.key(
            JobSpec.from_config(cfg3, "static", "random", 0.93).cache_token())

    def test_canonical_json_rejects_unserializable(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_tuple_and_list_cannot_alias(self, cache):
        """Two configs differing only in container type must not share a
        cache key (plain JSON encodes (1, 2) and [1, 2] identically)."""
        assert canonical_json({"x": (1, 2)}) != canonical_json({"x": [1, 2]})
        assert cache.key({"x": (1, 2)}) != cache.key({"x": [1, 2]})

    def test_set_and_sorted_list_cannot_alias(self, cache):
        assert cache.key({"x": {1, 2}}) != cache.key({"x": [1, 2]})

    def test_literal_tag_cannot_alias_real_tuple(self, cache):
        """A list that happens to spell the tuple tag still gets its own key."""
        assert cache.key({"x": ("__tuple__", [1])}) != \
            cache.key({"x": ["__tuple__", [1]]})

    def test_mixed_type_set_is_serializable_and_stable(self, cache):
        """sorted() crashes on {1, 'a'}; the canonical form must not, and
        must not depend on set iteration order."""
        key = cache.key({"x": {1, "a", (2, 3)}})
        assert key == cache.key({"x": {(2, 3), "a", 1}})
        assert key != cache.key({"x": {1, "a"}})

    def test_nested_containers_roundtrip_distinctly(self, cache):
        assert cache.key({"x": [(1,), (2,)]}) != cache.key({"x": [[1], [2]]})

    def test_code_fingerprint_is_memoized_hex(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64
        int(code_fingerprint(), 16)  # valid hex


class TestHitMiss:
    def test_roundtrip(self, cache):
        key = cache.key({"x": 1})
        hit, _ = cache.get(key)
        assert not hit
        cache.put(key, {"value": 42})
        hit, value = cache.get(key)
        assert hit
        assert value == {"value": 42}
        assert cache.hits == 1
        assert cache.misses == 1

    def test_runner_skips_execution_on_hit(self, cache):
        job = CountingJob("a")
        runner = ParallelRunner(jobs=1, cache=cache)
        assert runner.run([job]) == ["result:a"]
        assert runner.run([job]) == ["result:a"]
        assert len(job.runs) == 1  # second run served from cache
        assert runner.cache_hits == 1

    def test_runner_mixes_hits_and_misses_in_order(self, cache):
        a, b = CountingJob("a"), CountingJob("b")
        runner = ParallelRunner(jobs=1, cache=cache)
        runner.run([a])
        assert runner.run([a, b]) == ["result:a", "result:b"]
        assert len(a.runs) == 1
        assert len(b.runs) == 1

    def test_no_cache_always_executes(self):
        job = CountingJob("a")
        runner = ParallelRunner(jobs=1, cache=None)
        runner.run([job])
        runner.run([job])
        assert len(job.runs) == 2

    def test_interrupted_sweep_persists_completed_jobs(self, cache):
        """Results are written as they complete, so a sweep killed midway
        resumes from its last finished job instead of starting over."""

        class Boom(RuntimeError):
            pass

        class ExplodingJob(CountingJob):
            def run(self):
                raise Boom()

        done, crash = CountingJob("a"), ExplodingJob("b")
        runner = ParallelRunner(jobs=1, cache=cache)
        with pytest.raises(Boom):
            runner.run([done, crash])
        # the completed job's result survived the crash...
        assert cache.get(cache.key(done.cache_token())) == (True, "result:a")
        # ...so the retry skips it and only runs the rest
        retry_done, retry_crash = CountingJob("a"), CountingJob("b")
        assert runner.run([retry_done, retry_crash]) == ["result:a", "result:b"]
        assert retry_done.runs == []  # cache hit, never executed

    def test_fingerprint_change_invalidates(self, tmp_path):
        job = CountingJob("a")
        old = ParallelRunner(cache=ResultCache(tmp_path, fingerprint="v1"))
        new = ParallelRunner(cache=ResultCache(tmp_path, fingerprint="v2"))
        old.run([job])
        new.run([job])
        assert len(job.runs) == 2  # code changed: no stale hit


class TestCorruption:
    def test_corrupted_entry_is_a_miss_and_removed(self, cache):
        key = cache.key({"x": 1})
        cache.put(key, "fine")
        path = cache.path_for(key)
        path.write_bytes(b"\x80\x04 definitely not a pickle")
        hit, value = cache.get(key)
        assert not hit
        assert value is None
        assert cache.errors == 1
        assert not path.exists()  # corrupt entry dropped
        # the slot is rebuildable afterwards
        cache.put(key, "fine")
        assert cache.get(key) == (True, "fine")

    def test_truncated_entry_is_a_miss(self, cache):
        key = cache.key({"x": 2})
        cache.put(key, list(range(1000)))
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:10])  # simulate a torn write
        hit, _ = cache.get(key)
        assert not hit

    def test_runner_recomputes_after_corruption(self, cache):
        job = CountingJob("a")
        runner = ParallelRunner(jobs=1, cache=cache)
        runner.run([job])
        key = cache.key(job.cache_token())
        cache.path_for(key).write_bytes(b"garbage")
        assert runner.run([job]) == ["result:a"]
        assert len(job.runs) == 2


def _hammer(args):
    """Worker for the concurrency test: write and read a shared key set.

    Every process writes the *same* deterministic value per key — exactly
    the distributed-sweep situation (content-addressed keys, pure jobs) —
    so any read must return that value regardless of who won each publish.
    """
    root, _worker_id, keys = args
    cache = ResultCache(root, fingerprint="hammer")
    bad = 0
    for _round in range(3):
        for i, key in enumerate(keys):
            cache.put(key, {"payload": i, "blob": list(range(200))})
            hit, value = cache.get(key)
            if hit and value["payload"] != i:
                bad += 1
    return bad


class TestConcurrentWriters:
    def test_many_processes_hammer_one_cache_dir(self, tmp_path):
        """N processes × M rounds writing the same keys: every entry stays
        readable and correct, and no temp droppings survive."""
        root = str(tmp_path / "shared-cache")
        probe = ResultCache(root, fingerprint="hammer")
        keys = [probe.key({"condition": i}) for i in range(8)]
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        with ctx.Pool(processes=6) as pool:
            corrupt_reads = pool.map(
                _hammer, [(root, w, keys) for w in range(6)])
        assert sum(corrupt_reads) == 0
        # every key present, valid, and carrying the agreed value
        for i, key in enumerate(keys):
            hit, value = probe.get(key)
            assert hit and value["payload"] == i
        stats = probe.stats()
        assert stats["entries"] == len(keys)
        assert stats["orphans"] == 0  # all temp files were consumed/removed

    def test_put_is_first_writer_wins(self, cache):
        """O_EXCL publish: an existing entry is never clobbered (keys are
        content addresses, so a second writer's value is identical by
        construction — discarding it is free and race-safe)."""
        key = cache.key({"x": 1})
        cache.put(key, "first")
        cache.put(key, "second")
        assert cache.get(key) == (True, "first")

    def test_put_republishes_after_removal(self, cache):
        key = cache.key({"x": 1})
        cache.put(key, "v1")
        cache.path_for(key).unlink()
        cache.put(key, "v2")
        assert cache.get(key) == (True, "v2")


class TestMaintenance:
    def test_clear(self, cache):
        for i in range(3):
            cache.put(cache.key({"i": i}), i)
        assert cache.clear() == 3
        assert cache.get(cache.key({"i": 0}))[0] is False

    def test_clear_sweeps_orphaned_tmp_files(self, cache):
        key = cache.key({"x": 1})
        cache.put(key, "v")
        orphan = cache.path_for(key).parent / "deadbeef.tmp"
        orphan.write_bytes(b"partial write from a killed worker")
        assert cache.clear() == 1  # one real entry...
        assert not orphan.exists()  # ...and the dropping is gone too

    def test_entries_are_pickle_files_sharded_by_prefix(self, cache):
        key = cache.key({"x": 1})
        cache.put(key, "v")
        path = cache.path_for(key)
        assert path.parent.name == key[:2]
        assert path.suffix == ".pkl"
        assert pickle.loads(path.read_bytes()) == "v"

    def test_version_in_key(self, cache):
        assert CACHE_VERSION == 1  # bump invalidates every entry by design
