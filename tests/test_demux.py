"""Tests for the RLIR stream demultiplexers."""

import pytest

from repro.core.demux import (
    PathClassifierDemux,
    SingleSenderDemux,
    UpstreamPrefixDemux,
)
from repro.core.marking import MarkingClassifier, assign_marks
from repro.net.addressing import Prefix, ip_to_int
from repro.net.headers import encode_mark
from repro.net.packet import Packet, PacketKind


def regular(src="10.1.0.1", tos=0):
    return Packet(src=ip_to_int(src), dst=ip_to_int("10.2.0.1"), tos=tos)


def reference(sender_id):
    return Packet(src=0, dst=0, kind=PacketKind.REFERENCE, sender_id=sender_id)


class TestSingleSenderDemux:
    def test_all_regulars_to_sender(self):
        d = SingleSenderDemux(7)
        assert d.classify_regular(regular()) == 7

    def test_prefix_filter(self):
        d = SingleSenderDemux(7, regular_prefixes=[Prefix.parse("10.1.0.0/16")])
        assert d.classify_regular(regular("10.1.2.3")) == 7
        assert d.classify_regular(regular("10.9.2.3")) is None

    def test_reference_by_sender_id(self):
        d = SingleSenderDemux(7)
        assert d.classify_reference(reference(7)) == 7
        assert d.classify_reference(reference(8)) is None


class TestUpstreamPrefixDemux:
    def make(self):
        return UpstreamPrefixDemux([
            (Prefix.parse("10.1.0.0/24"), 100),
            (Prefix.parse("10.1.1.0/24"), 101),
        ])

    def test_origin_tor_identified(self):
        d = self.make()
        assert d.classify_regular(regular("10.1.0.9")) == 100
        assert d.classify_regular(regular("10.1.1.9")) == 101

    def test_unknown_origin_ignored(self):
        assert self.make().classify_regular(regular("10.9.0.1")) is None

    def test_references_from_either_sender(self):
        d = self.make()
        assert d.classify_reference(reference(100)) == 100
        assert d.classify_reference(reference(101)) == 101
        assert d.classify_reference(reference(102)) is None

    def test_requires_mappings(self):
        with pytest.raises(ValueError):
            UpstreamPrefixDemux([])


class TestPathClassifierDemux:
    def make(self, with_prefix=True):
        marks = MarkingClassifier({1: 200, 2: 201})
        prefixes = [Prefix.parse("10.1.0.0/16")] if with_prefix else None
        return PathClassifierDemux(marks, sender_ids=[200, 201],
                                   source_prefixes=prefixes)

    def test_marked_packet_classified(self):
        d = self.make()
        p = regular(tos=encode_mark(0, 2))
        assert d.classify_regular(p) == 201

    def test_unmarked_packet_ignored(self):
        assert self.make().classify_regular(regular()) is None

    def test_source_prefix_filter_first(self):
        d = self.make()
        p = regular(src="10.9.0.1", tos=encode_mark(0, 1))
        assert d.classify_regular(p) is None

    def test_classifier_result_must_be_subscribed(self):
        marks = MarkingClassifier({1: 999})  # maps to an unsubscribed sender
        d = PathClassifierDemux(marks, sender_ids=[200])
        assert d.classify_regular(regular(tos=encode_mark(0, 1))) is None

    def test_requires_senders(self):
        with pytest.raises(ValueError):
            PathClassifierDemux(lambda p: None, sender_ids=[])


class TestMarkingHelpers:
    def test_assign_marks_distinct_nonzero(self):
        marks = assign_marks(["a", "b", "c"])
        assert len(set(marks.values())) == 3
        assert all(m >= 1 for m in marks.values())

    def test_assign_too_many(self):
        with pytest.raises(ValueError):
            assign_marks(range(100))

    def test_marking_classifier_rejects_mark_zero(self):
        with pytest.raises(ValueError):
            MarkingClassifier({0: 1})

    def test_marking_classifier_requires_entries(self):
        with pytest.raises(ValueError):
            MarkingClassifier({})
