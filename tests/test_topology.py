"""Tests for the k-ary fat-tree builder: structure, addressing, routing."""

import pytest

from repro.net.packet import Packet
from repro.sim.routing import RoutingError, trace_route
from repro.sim.topology import FatTree, LinkParams, Topology


class TestGenericTopology:
    def test_duplicate_name_rejected(self):
        topo = Topology()
        topo.add_switch("a", 1)
        with pytest.raises(ValueError):
            topo.add_switch("a", 2)

    def test_connect_wires_both_directions(self):
        topo = Topology()
        a = topo.add_switch("a", 1)
        b = topo.add_switch("b", 2)
        pa, pb = topo.connect(a, b, LinkParams())
        assert a.ports[pa].neighbor is b
        assert b.ports[pb].neighbor is a
        assert topo.port_toward(a, b) == pa
        assert topo.port_toward(b, a) == pb

    def test_links_enumerated_once(self):
        topo = Topology()
        a, b, c = (topo.add_switch(n, i) for i, n in enumerate("abc"))
        topo.connect(a, b, LinkParams())
        topo.connect(b, c, LinkParams())
        assert len(list(topo.links())) == 2


class TestFatTreeStructure:
    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            FatTree(3)

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_switch_counts(self, k):
        ft = FatTree(k)
        half = k // 2
        assert len(ft.switches) == k * k + half * half
        assert sum(len(row) for row in ft.edges) == k * half
        assert sum(len(row) for row in ft.aggs) == k * half
        assert sum(len(row) for row in ft.cores) == half * half

    @pytest.mark.parametrize("k", [4, 8])
    def test_link_counts(self, k):
        ft = FatTree(k)
        # edge-agg: k pods x (k/2)^2; agg-core: (k/2)^2 cores x k pods
        expected = k * (k // 2) ** 2 + (k // 2) ** 2 * k
        assert len(list(ft.links())) == expected

    def test_port_counts(self, fattree4):
        for row in fattree4.edges:
            for sw in row:
                assert len(sw.ports) == 2  # k/2 uplinks (hosts not modeled)
        for row in fattree4.aggs:
            for sw in row:
                assert len(sw.ports) == 4  # k/2 down + k/2 up
        for row in fattree4.cores:
            for sw in row:
                assert len(sw.ports) == 4  # one per pod


class TestAddressing:
    def test_host_addresses_in_tor_prefix(self, fattree4):
        prefix = fattree4.tor_prefix(2, 1)
        for h in range(2):
            assert fattree4.host_address(2, 1, h) in prefix

    def test_host_index_bounds(self, fattree4):
        with pytest.raises(ValueError):
            fattree4.host_address(4, 0, 0)
        with pytest.raises(ValueError):
            fattree4.host_address(0, 2, 0)
        with pytest.raises(ValueError):
            fattree4.host_address(0, 0, 2)

    def test_locate_host_roundtrip(self, fattree4):
        addr = fattree4.host_address(3, 1, 0)
        assert fattree4.locate_host(addr) == (3, 1)
        assert fattree4.edge_of(addr) is fattree4.edges[3][1]

    def test_distinct_switch_addresses(self, fattree8):
        addrs = [sw.address for sw in fattree8.switches]
        assert len(set(addrs)) == len(addrs)

    def test_pod_prefix_contains_tor_prefixes(self, fattree4):
        pod = fattree4.pod_prefix(1)
        assert pod.overlaps(fattree4.tor_prefix(1, 0))
        assert not pod.overlaps(fattree4.tor_prefix(2, 0))


class TestRouting:
    def _pkt(self, ft, src, dst, sport=1000, dport=2000):
        return Packet(src=src, dst=dst, sport=sport, dport=dport)

    def test_interpod_route_climbs_to_core(self, fattree4):
        ft = fattree4
        p = self._pkt(ft, ft.host_address(0, 0, 0), ft.host_address(2, 1, 1))
        path = trace_route(ft.edges[0][0], p)
        names = [sw.name for sw in path]
        assert len(path) == 5  # edge, agg, core, agg, edge
        assert names[0].startswith("edge(p0")
        assert names[2].startswith("core(")
        assert names[-1] == "edge(p2,e1)"

    def test_intrapod_route_bounces_off_agg(self, fattree4):
        ft = fattree4
        p = self._pkt(ft, ft.host_address(1, 0, 0), ft.host_address(1, 1, 0))
        path = trace_route(ft.edges[1][0], p)
        assert len(path) == 3
        assert path[1].name.startswith("agg(p1")
        assert path[2] is ft.edges[1][1]

    def test_intra_tor_delivery(self, fattree4):
        ft = fattree4
        p = self._pkt(ft, ft.host_address(1, 0, 0), ft.host_address(1, 0, 1))
        path = trace_route(ft.edges[1][0], p)
        assert path == [ft.edges[1][0]]

    def test_up_path_matches_trace_route(self, fattree8):
        """The deterministic up_path computation (what reverse ECMP relies
        on) agrees with actual hop-by-hop forwarding for many flows."""
        ft = fattree8
        src = ft.host_address(0, 1, 2)
        dst = ft.host_address(5, 2, 3)
        for sport in range(50):
            p = self._pkt(ft, src, dst, sport=sport, dport=80)
            edge, agg, core = ft.up_path(p.flow_key)
            path = trace_route(ft.edges[0][1], p)
            assert path[0] is edge
            assert path[1] is agg
            assert path[2] is core

    def test_up_path_rejects_local_flows(self, fattree4):
        ft = fattree4
        same_tor = (ft.host_address(0, 0, 0), ft.host_address(0, 0, 1), 1, 2, 6)
        intra_pod = (ft.host_address(0, 0, 0), ft.host_address(0, 1, 0), 1, 2, 6)
        with pytest.raises(ValueError):
            ft.up_path(same_tor)
        with pytest.raises(ValueError):
            ft.up_path(intra_pod)

    def test_flows_spread_over_cores(self, fattree8):
        """ECMP places flows between one host pair across many cores."""
        ft = fattree8
        src = ft.host_address(0, 0, 0)
        dst = ft.host_address(4, 0, 0)
        cores = {ft.core_of((src, dst, sport, 80, 6)).name for sport in range(200)}
        assert len(cores) >= 8  # of 16 possible

    def test_switch_address_routable(self, fattree4):
        """Packets addressed to a core terminate there (reference packets)."""
        ft = fattree4
        core = ft.cores[1][0]
        src = ft.host_address(0, 0, 0)
        # find a flow key whose up-path lands on this core; flows hashed to
        # other cores are unroutable there (no downward route to 10.k.x.y),
        # which is why RLIR senders must craft per-path reference flows
        for sport in range(500):
            p = self._pkt(ft, src, core.address, sport=sport)
            try:
                path = trace_route(ft.edges[0][0], p)
            except RoutingError:
                continue
            if path[-1] is core:
                break
        else:
            pytest.fail("no crafted flow reached the target core")
