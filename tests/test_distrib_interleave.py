"""Deterministic interleaving tests for the broker's state machine.

Each test drives a *real* :class:`repro.distrib.broker.Broker` —
single-threaded, via :class:`repro.distrib.chaos.BrokerHarness` — through
one pathological message ordering that the threaded broker could only hit
by losing a race.  The first three reproduce bugs the pre-hardening broker
actually had:

* ``_chunk_error`` popped a worker's assignment *unconditionally* and only
  requeued on a chunk-id match, so a stale error for a previously requeued
  chunk silently discarded the worker's live chunk — its jobs could never
  settle and the driver hung forever;
* ``_chunk_error`` crashed the receiver thread with IndexError on a
  whitespace-only traceback (``trace.strip().splitlines()[-1]``);
* ``_complete_chunk`` re-idled a worker on a result for a chunk it was
  never assigned, letting a later dispatch overwrite — and lose — the
  chunk it *was* holding.

The rest pin down the recovery semantics this PR adds (orphan sweeps,
settled-outcome replay on reattach, journal recovery after a bounce), and
a seeded random walk property-checks the whole transition vocabulary.
"""

import os

import pytest

from repro.distrib.broker import Broker
from repro.distrib.chaos import (
    BrokerHarness,
    check_invariants,
    run_random_schedule,
)
from repro.distrib.journal import SweepJournal, load_journals

COMPUTE = lambda job: ("value-of", job)  # noqa: E731


def entry(seq, key=None):
    """A sweep entry whose 'job' is just its seq (tests never execute it)."""
    return (seq, key if key is not None else f"key-{seq}", seq)


class TestFixedRaces:
    """One regression test per race fixed in this PR."""

    def test_stale_error_after_requeue_keeps_live_assignment(self):
        # max_retries=0: the first error permanently fails the chunk, so
        # the duplicate error that follows is genuinely *stale* — the
        # worker has moved on to a different chunk by then.
        h = BrokerHarness(max_retries=0)
        driver = h.add_driver()
        h.submit(driver, "s", [entry(0, "a"), entry(1, "b")])
        worker = h.add_worker()

        _, chunk_a = h.dispatch()
        h.worker_error(worker, chunk_a.id, "Traceback\nValueError: boom")
        assert h.failures_to(driver) == {0: (1, "ValueError: boom")}

        _, chunk_b = h.dispatch()
        assert chunk_b.id != chunk_a.id

        # the stale duplicate: an error for chunk A arriving while the
        # worker holds chunk B.  The pre-fix broker popped B here — no
        # owner, no requeue, driver hung forever.
        h.worker_error(worker, chunk_a.id, "Traceback\nValueError: boom")
        assert h.assignment(worker) is chunk_b, (
            "stale error discarded the worker's live assignment"
        )
        assert worker.id not in h.idle()
        check_invariants(h)

        # and chunk B is still fully alive: the worker completes it and
        # the sweep concludes (pre-fix, the discarded assignment made
        # seq 1 unreachable — no owner, not requeued — and done never came)
        h.finish_assignment(worker, COMPUTE)
        assert h.results_to(driver) == {1: COMPUTE(1)}
        assert h.done_count(driver) == 1
        h.close()

    def test_blank_traceback_does_not_kill_receiver(self):
        # "\n" is truthy but strips to nothing: the pre-fix
        # trace.strip().splitlines()[-1] raised IndexError, killing the
        # receiver thread of a perfectly healthy worker
        h = BrokerHarness(max_retries=0)
        driver = h.add_driver()
        h.submit(driver, "s", [entry(0)])
        worker = h.add_worker()
        _, chunk = h.dispatch()
        h.worker_error(worker, chunk.id, "\n")  # must not raise
        assert h.failures_to(driver) == {0: (1, "job raised")}
        assert worker.id in h.idle()
        assert h.done_count(driver) == 1
        check_invariants(h)
        h.close()

    def test_foreign_chunk_result_does_not_idle_worker(self):
        h = BrokerHarness()
        driver = h.add_driver()
        h.submit(driver, "s", [entry(0, "a"), entry(1, "b"), entry(2, "c")])
        worker = h.add_worker()

        _, chunk_a = h.dispatch()
        h.finish_assignment(worker, COMPUTE)
        _, chunk_b = h.dispatch()

        # duplicate result for already-settled chunk A while holding B.
        # Pre-fix, this re-idled the worker: the very next dispatch would
        # assign chunk C over B in the assignment table, losing B.
        h.worker_result(worker, chunk_a.id, [
            (("s", seq), COMPUTE(job)) for seq, job in chunk_a.entries
        ])
        assert worker.id not in h.idle(), (
            "a foreign-chunk result re-idled a busy worker"
        )
        assert h.assignment(worker) is chunk_b
        check_invariants(h)

        assert h.dispatch() is None  # nobody idle: chunk C must wait
        h.finish_assignment(worker, COMPUTE)
        h.dispatch()
        h.finish_assignment(worker, COMPUTE)

        results = h.results_to(driver)
        assert results == {seq: COMPUTE(seq) for seq in (0, 1, 2)}
        # ... and seq 0 was delivered exactly once despite the duplicate
        deliveries = [seq for _tag, pairs in driver.conn.tagged("result")
                      for seq, _value in pairs]
        assert deliveries.count(0) == 1
        assert h.done_count(driver) == 1
        h.close()

    def test_result_racing_monitor_death(self):
        # the monitor declares a silent worker dead and requeues its chunk
        # — then the "dead" worker's result arrives anyway.  First outcome
        # wins; the requeued duplicate chunk dissolves at dispatch.
        h = BrokerHarness(heartbeat_timeout=10.0)
        driver = h.add_driver()
        h.submit(driver, "s", [entry(0)])
        worker = h.add_worker()
        _, chunk = h.dispatch()

        reaped = h.tick(11.0)
        assert worker in reaped and not worker.alive
        assert h.pending(), "the dead worker's chunk was not requeued"

        h.worker_result(worker, chunk.id, [
            (("s", seq), COMPUTE(job)) for seq, job in chunk.entries
        ])
        assert h.results_to(driver) == {0: COMPUTE(0)}
        assert h.done_count(driver) == 1

        # the requeued copy is now all-settled: dispatch drops it instead
        # of burning a worker on it
        late = h.add_worker()
        assert h.dispatch() is None
        assert not h.pending()
        assert late.id in h.idle()
        check_invariants(h)
        h.close()


class TestReattachSemantics:
    """Orphaned sweeps, settled-outcome replay, submit-during-conclude."""

    def test_partitioned_driver_sweep_keeps_executing(self):
        h = BrokerHarness()
        driver = h.add_driver()
        h.submit(driver, "s", [entry(0, "a"), entry(1, "b")])
        worker = h.add_worker()
        h.dispatch()
        h.finish_assignment(worker, COMPUTE)
        assert h.results_to(driver) == {0: COMPUTE(0)}

        h.driver_eof(driver)  # crash/partition: NOT a clean bye
        assert h.broker.sweep_count() == 1, "unclean EOF abandoned the sweep"

        # the orphan keeps executing while no driver is attached
        h.dispatch()
        h.finish_assignment(worker, COMPUTE)

        # reattach under the same sweep id, asking for what's missing:
        # the settled-while-away outcome replays with no recompute
        driver2 = h.add_driver()
        h.submit(driver2, "s", [entry(1, "b")])
        assert h.results_to(driver2) == {1: COMPUTE(1)}
        assert h.done_count(driver2) == 1
        h.driver_bye(driver2)
        assert h.broker.sweep_count() == 0  # concluded once the driver left
        h.close()

    def test_clean_bye_abandons_unfinished_sweep(self):
        h = BrokerHarness()
        driver = h.add_driver()
        h.submit(driver, "s", [entry(0)])
        h.driver_bye(driver)
        assert h.broker.sweep_count() == 0
        # the abandoned chunk dissolves at dispatch instead of running
        h.add_worker()
        assert h.dispatch() is None
        assert not h.pending()
        h.close()

    def test_empty_submit_is_immediately_done(self):
        h = BrokerHarness()
        driver = h.add_driver()
        h.submit(driver, "s", [])
        assert h.done_count(driver) == 1
        h.close()

    def test_done_lost_to_partition_is_resent_on_reattach(self):
        # the final outcome settles while the driver's link is down: the
        # send fails, so the sweep must stay reattachable — concluding it
        # would strand the undelivered outcome
        h = BrokerHarness()
        driver = h.add_driver()
        h.submit(driver, "s", [entry(0)])
        worker = h.add_worker()
        h.dispatch()
        driver.conn.partitioned = True
        h.finish_assignment(worker, COMPUTE)
        assert h.results_to(driver) == {}  # nothing got through
        h.driver_eof(driver)
        assert h.broker.sweep_count() == 1, (
            "sweep concluded with its outcome undelivered"
        )
        driver2 = h.add_driver()
        h.submit(driver2, "s", [entry(0)])
        assert h.results_to(driver2) == {0: COMPUTE(0)}
        assert h.done_count(driver2) == 1
        h.close()

    def test_resubmit_after_done_finishes_again(self):
        # a driver that received "done" but whose bye was lost may
        # reconnect and resubmit; finished-ness is per-connection
        h = BrokerHarness()
        driver = h.add_driver()
        h.submit(driver, "s", [entry(0)])
        worker = h.add_worker()
        h.dispatch()
        h.finish_assignment(worker, COMPUTE)
        assert h.done_count(driver) == 1
        h.driver_eof(driver)  # finished sweep + EOF → concluded
        assert h.broker.sweep_count() == 0
        # the replacement connection resubmits nothing it already has
        driver2 = h.add_driver()
        h.submit(driver2, "s", [])
        assert h.done_count(driver2) == 1
        h.close()


class TestJournalRecovery:
    """Broker bounce: the journal resumes what memory forgot."""

    def test_bounced_broker_resumes_mid_sweep(self, tmp_path):
        jdir = str(tmp_path)
        h = BrokerHarness(journal_dir=jdir)
        driver = h.add_driver()
        h.submit(driver, "s", [entry(0, "a"), entry(1, "b"), entry(2, "c")])
        worker = h.add_worker()
        h.dispatch()
        h.finish_assignment(worker, COMPUTE)  # seq 0 settles pre-bounce
        h.close()  # SIGKILL equivalent: every thread and socket vanishes

        h2 = BrokerHarness(journal_dir=jdir)
        assert h2.broker.sweep_count() == 1
        sweep = h2.broker._sweeps["s"]
        assert sweep.remaining == {1, 2}
        assert sweep.settled[0] == ("result", COMPUTE(0))
        # unsettled jobs are queued before any driver reattaches
        queued = {seq for chunk in h2.pending() for seq, _ in chunk.entries}
        assert queued == {1, 2}

        # the driver reconnects knowing nothing arrived for seq 0 either
        # (say the result was in flight when the broker died): the journal
        # replays it without recomputing
        driver2 = h2.add_driver()
        h2.submit(driver2, "s", [entry(0, "a"), entry(1, "b"), entry(2, "c")])
        assert h2.results_to(driver2) == {0: COMPUTE(0)}

        worker2 = h2.add_worker()
        for _ in range(2):
            h2.dispatch()
            h2.finish_assignment(worker2, COMPUTE)
        assert h2.results_to(driver2) == {seq: COMPUTE(seq)
                                          for seq in (0, 1, 2)}
        assert h2.done_count(driver2) == 1
        # concluded: the journal file is gone, a third broker starts clean
        h2.driver_bye(driver2)
        assert load_journals(jdir) == []
        h2.close()

    def test_torn_journal_tail_is_tolerated(self, tmp_path):
        jdir = str(tmp_path)
        journal = SweepJournal.create(jdir, "torn")
        journal.record_submit([entry(0), entry(1)], workers_hint=2)
        journal.record_settled([(0, ("result", COMPUTE(0)))])
        journal.close()
        # simulate a crash mid-write: garbage where the next record starts
        path = os.path.join(jdir, "sweep-torn.journal")
        with open(path, "ab") as fh:
            fh.write(b"\x80\x05garbage-torn-tail")
        [rec] = load_journals(jdir)
        assert rec.sweep_id == "torn"
        assert [e[0] for e in rec.entries] == [0, 1]
        assert rec.settled == {0: ("result", COMPUTE(0))}
        assert [e[0] for e in rec.unsettled()] == [1]

    def test_journal_write_ahead_of_delivery(self, tmp_path):
        # the outcome reaches disk before the driver: a crash between the
        # two replays it instead of losing it
        jdir = str(tmp_path)
        h = BrokerHarness(journal_dir=jdir)
        driver = h.add_driver()
        h.submit(driver, "s", [entry(0)])
        worker = h.add_worker()
        h.dispatch()
        driver.conn.partitioned = True  # delivery will fail...
        h.finish_assignment(worker, COMPUTE)
        h.close()
        [rec] = load_journals(jdir)  # ...but the journal has the outcome
        assert rec.settled == {0: ("result", COMPUTE(0))}


class TestSuspicionAndHedging:
    """Adaptive liveness: slow → suspect → recovered, and hedged tails.

    All timings run on the harness clock, so every threshold crossing is
    exact: with ``heartbeat_timeout=10`` the suspicion band is clamped to
    ``[2.5, 5.0]`` and death stays at 10.
    """

    def _beat_cadence(self, h, worker, period, beats):
        """Establish a regular heartbeat rhythm (trains the EWMA)."""
        for _ in range(beats):
            h.tick(period)
            h.heartbeat(worker)

    def test_slow_worker_becomes_suspect_then_recovers_without_requeue(self):
        h = BrokerHarness(heartbeat_timeout=10.0)
        driver = h.add_driver()
        h.submit(driver, "s", [entry(0, "a")])
        worker = h.add_worker()
        # a crisp 2 s cadence: suspect_after ≈ mean + 4σ ≈ 2.8 s, well
        # inside the [2.5, 5.0] clamp
        self._beat_cadence(h, worker, period=2.0, beats=3)
        _, chunk = h.dispatch()

        h.tick(3.5)  # 3.5 s of silence: past suspicion, far from death
        assert worker.id in h.suspects()
        assert worker.alive, "suspicion must not kill the worker"
        assert h.assignment(worker) is chunk, "suspicion requeued the chunk"
        assert not h.pending()
        # ... and the driver heard about it
        _tag, snapshot = driver.conn.tagged("progress")[-1]
        assert (worker.id, "slow") in snapshot["worker_health"]

        # one heartbeat clears the suspicion (hysteresis, not a ratchet)
        h.heartbeat(worker)
        h.tick(0.1)
        assert worker.id not in h.suspects()
        assert h.assignment(worker) is chunk
        _tag, snapshot = driver.conn.tagged("progress")[-1]
        assert (worker.id, "ok") in snapshot["worker_health"]

        # the recovered worker finishes normally: no retry ever happened
        h.finish_assignment(worker, COMPUTE)
        assert h.results_to(driver) == {0: COMPUTE(0)}
        assert h.done_count(driver) == 1
        assert snapshot["retries"] == 0
        check_invariants(h)
        h.close()

    def test_dispatch_prefers_unsuspected_workers(self):
        h = BrokerHarness(heartbeat_timeout=10.0)
        driver = h.add_driver()
        slow = h.add_worker()   # lower id: would win a naive min()
        fast = h.add_worker()
        h.tick(6.0)             # both silent past the 5.0 s ceiling...
        h.heartbeat(fast)       # ...but only `fast` comes back
        h.tick(0.1)
        assert h.suspects() == {slow.id}
        h.submit(driver, "s", [entry(0, "a")])
        assigned_worker, _chunk = h.dispatch()
        assert assigned_worker is fast
        check_invariants(h)
        h.close()

    def test_tail_chunk_on_suspect_worker_is_hedged_first_result_wins(self):
        h = BrokerHarness(heartbeat_timeout=10.0)
        driver = h.add_driver()
        h.submit(driver, "s", [entry(0, "a"), entry(1, "b")])
        w1 = h.add_worker()
        w2 = h.add_worker()
        pairs = h.dispatch_all()
        assert [(w.id, c.id) for w, c in pairs] == [
            (w1.id, pairs[0][1].id), (w2.id, pairs[1][1].id)]
        chunk2 = pairs[1][1]

        # w1 completes its chunk after 1 s: per-chunk EWMA is now 1.0 s,
        # so the hedge trigger sits at 3 s (hedge_factor 3.0)
        h.tick(1.0)
        h.finish_assignment(w1, COMPUTE)
        h.worker_ready(w1)

        # w2 goes silent while w1 keeps beating; at 6 s w2 is past the
        # 5.0 s suspicion ceiling and chunk2 is 6 s ≥ 3 s overdue
        h.tick(2.5)
        h.heartbeat(w1)
        h.tick(2.5)
        assert w2.id in h.suspects() and w2.alive

        # the tail chunk was hedged to the idle healthy worker
        hedge = h.assignment(w1)
        assert hedge is not None and hedge.id != chunk2.id
        assert hedge.entries == chunk2.entries
        assert h.broker._sweeps["s"].hedged == {1: 1}
        _tag, snapshot = driver.conn.tagged("progress")[-1]
        assert snapshot["hedges"] == 1

        # the hedge wins: seq 1 settles, and the loser gets a cancel
        h.finish_assignment(w1, COMPUTE)
        assert w2.conn.tagged("cancel") == [("cancel", chunk2.id)]
        assert h.done_count(driver) == 1

        # w2's late original result is a duplicate, not a double delivery
        h.worker_result(w2, chunk2.id, [
            (("s", seq), COMPUTE(job)) for seq, job in chunk2.entries
        ])
        deliveries = [seq for _t, p in driver.conn.tagged("result")
                      for seq, _v in p]
        assert deliveries.count(1) == 1
        assert h.results_to(driver) == {0: COMPUTE(0), 1: COMPUTE(1)}
        _tag, snapshot = driver.conn.tagged("progress")[-1]
        assert snapshot["retries"] == 0, "hedges must not count as retries"
        check_invariants(h)
        h.close()

    def test_hedging_disabled_by_zero_cap(self):
        h = BrokerHarness(heartbeat_timeout=10.0, max_hedges_per_chunk=0)
        driver = h.add_driver()
        h.submit(driver, "s", [entry(0, "a"), entry(1, "b")])
        w1 = h.add_worker()
        w2 = h.add_worker()
        h.dispatch_all()
        h.tick(1.0)
        h.finish_assignment(w1, COMPUTE)
        h.worker_ready(w1)
        h.tick(2.5)
        h.heartbeat(w1)
        h.tick(2.5)
        assert w2.id in h.suspects()
        assert h.assignment(w1) is None, "cap 0 must disable hedging"
        assert not h.broker._sweeps["s"].hedged
        check_invariants(h)
        h.close()

    def test_hedge_budget_survives_broker_bounce(self, tmp_path):
        jdir = str(tmp_path)
        h = BrokerHarness(heartbeat_timeout=10.0, journal_dir=jdir)
        driver = h.add_driver()
        h.submit(driver, "s", [entry(0, "a"), entry(1, "b")])
        w1 = h.add_worker()
        w2 = h.add_worker()
        pairs = h.dispatch_all()
        chunk2 = pairs[1][1]
        h.tick(1.0)
        h.finish_assignment(w1, COMPUTE)
        h.worker_ready(w1)
        h.tick(2.5)
        h.heartbeat(w1)
        h.tick(2.5)
        assert h.broker._sweeps["s"].hedged == {1: 1}  # hedge in flight
        h.close()  # bounce with the hedge undecided

        h2 = BrokerHarness(heartbeat_timeout=10.0, journal_dir=jdir)
        sweep = h2.broker._sweeps["s"]
        assert sweep.hedged == {1: 1}, "hedge budget lost across bounce"
        assert sweep.hedges == 1
        check_invariants(h2)

        # replay the same slow-worker scenario: the budget is spent, so
        # no second duplicate of seq 1 is ever dispatched
        w3 = h2.add_worker()
        w4 = h2.add_worker()
        with h2.broker._lock:
            sweep.chunk_ewma = 1.0  # recovered brokers re-learn durations
        dispatched = h2.dispatch_all()
        holder = dispatched[0][0]
        spare = w4 if holder is w3 else w3
        h2.worker_ready(spare)
        h2.tick(6.0)
        h2.heartbeat(spare)
        h2.tick(0.1)
        assert holder.id in h2.suspects()
        assert h2.assignment(spare) is None, (
            "hedge cap exceeded after journal recovery"
        )
        # the chunk still completes the boring way
        h2.finish_assignment(holder, COMPUTE)
        driver2 = h2.add_driver()
        h2.submit(driver2, "s", [entry(0, "a"), entry(1, "b")])
        assert h2.results_to(driver2) == {0: COMPUTE(0), 1: COMPUTE(1)}
        check_invariants(h2)
        h2.close()


class TestRandomSchedules:
    """Seeded property test over the full transition vocabulary."""

    @pytest.mark.parametrize("seed", range(5))
    def test_200_step_random_schedule(self, seed):
        received = run_random_schedule(seed, steps=200)
        assert all(value == COMPUTE(seq) for seq, value in received.items())

    @pytest.mark.parametrize("seed", [1000, 1001])
    def test_random_schedule_with_broker_bounces(self, seed, tmp_path):
        run_random_schedule(seed, steps=200, journal_dir=str(tmp_path))


def test_harness_uses_the_real_broker():
    """The double is the production class, not a reimplementation."""
    h = BrokerHarness()
    assert type(h.broker) is Broker
    h.close()
