"""Smoke test: every ``examples/*.py`` script must run to completion.

The examples are documentation that executes — each is referenced from
``docs/`` and the README, so a bitrotted example is a broken doc.  Each
script runs in a fresh interpreter at ``REPRO_SCALE=0.02`` (examples that
pin their own smaller scale keep it; the env var caps the ones that defer
to it) and must exit 0.  The CI ``docs-check`` lane runs exactly this.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_exist():
    assert EXAMPLES, "examples/ directory lost its scripts"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(path):
    env = dict(os.environ)
    env["REPRO_SCALE"] = "0.02"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=600, env=env,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, (
        f"{path.name} exited {proc.returncode}\n"
        f"--- stdout tail ---\n{proc.stdout[-1500:]}\n"
        f"--- stderr tail ---\n{proc.stderr[-1500:]}"
    )
    assert proc.stdout.strip(), f"{path.name} printed nothing"
