"""Tests for workload samplers."""

import numpy as np
import pytest

from repro.traffic.distributions import (
    BoundedPareto,
    LognormalGaps,
    PacketSizeMix,
)


class TestBoundedPareto:
    def test_samples_within_bounds(self):
        d = BoundedPareto(alpha=1.2, low=1.0, high=100.0)
        samples = d.sample(np.random.default_rng(0), 5000)
        assert samples.min() >= 1.0
        assert samples.max() <= 100.0

    def test_empirical_mean_matches_analytic(self):
        d = BoundedPareto(alpha=1.3, low=1.0, high=1000.0)
        samples = d.sample(np.random.default_rng(1), 200_000)
        assert samples.mean() == pytest.approx(d.mean(), rel=0.05)

    def test_alpha_one_mean(self):
        d = BoundedPareto(alpha=1.0, low=1.0, high=100.0)
        samples = d.sample(np.random.default_rng(2), 200_000)
        assert samples.mean() == pytest.approx(d.mean(), rel=0.05)

    def test_heavier_tail_for_smaller_alpha(self):
        rng = np.random.default_rng(3)
        light = BoundedPareto(2.5, 1.0, 1e4).sample(rng, 50_000)
        rng = np.random.default_rng(3)
        heavy = BoundedPareto(1.1, 1.0, 1e4).sample(rng, 50_000)
        assert np.quantile(heavy, 0.99) > np.quantile(light, 0.99)

    def test_deterministic_given_seed(self):
        d = BoundedPareto(1.2, 1.0, 100.0)
        a = d.sample(np.random.default_rng(7), 10)
        b = d.sample(np.random.default_rng(7), 10)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("kwargs", [
        dict(alpha=0, low=1, high=2),
        dict(alpha=1, low=0, high=2),
        dict(alpha=1, low=3, high=2),
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            BoundedPareto(**kwargs)


class TestPacketSizeMix:
    def test_default_mix_mean(self):
        mix = PacketSizeMix()
        samples = mix.sample(np.random.default_rng(0), 100_000)
        assert samples.mean() == pytest.approx(mix.mean(), rel=0.02)

    def test_only_listed_sizes_drawn(self):
        mix = PacketSizeMix({40: 0.5, 1500: 0.5})
        samples = mix.sample(np.random.default_rng(0), 1000)
        assert set(np.unique(samples)) <= {40, 1500}

    def test_probabilities_normalized(self):
        mix = PacketSizeMix({100: 2.0, 200: 2.0})
        assert mix.mean() == pytest.approx(150.0)

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            PacketSizeMix({})


class TestLognormalGaps:
    def test_mean_matches(self):
        gaps = LognormalGaps(mean_gap=1e-3, sigma=1.0)
        samples = gaps.sample(np.random.default_rng(0), 200_000)
        assert samples.mean() == pytest.approx(1e-3, rel=0.05)

    def test_zero_sigma_constant(self):
        gaps = LognormalGaps(mean_gap=2e-3, sigma=0.0)
        samples = gaps.sample(np.random.default_rng(0), 10)
        assert np.allclose(samples, 2e-3)

    def test_all_positive(self):
        samples = LognormalGaps(1e-3, 2.0).sample(np.random.default_rng(0), 10_000)
        assert (samples > 0).all()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LognormalGaps(0.0)
        with pytest.raises(ValueError):
            LognormalGaps(1e-3, sigma=-1.0)
