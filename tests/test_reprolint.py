"""Tests for the reprolint invariant checker (tools/reprolint).

Two layers:

* **Fixture tests** (always run): each rule family must fire on the
  checked-in bad fixtures under ``tests/fixtures/reprolint/`` at known
  lines, suppressions with a justification must silence a finding,
  suppressions *without* one must not (and must raise META001), and the
  ``CACHE_KEY_EXEMPT`` / ``PREPARE_KEY_EXEMPT`` allowlists must be
  honoured.  The fixtures are never imported — only parsed.
* **Gate tests** (``@pytest.mark.reprolint``, enabled with
  ``pytest --reprolint``): the real tree must be clean, the CLI must
  exit 0 on it, and mypy (when installed) must pass the committed
  ``mypy.ini``.  These are the CI lint lane.

``conftest.py`` puts ``tools/`` on ``sys.path`` so ``import reprolint``
works without environment tweaks.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

from reprolint import ALL_RULES, lint_file, run_paths
from reprolint.rules import RULES_BY_ID

REPO = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "reprolint"


def findings_for(relpath):
    """(rule, line) pairs for one fixture file, plus the raw findings."""
    found = lint_file(FIXTURES / relpath, ALL_RULES)
    return [(f.rule, f.line) for f in found], found


def rule_lines(pairs, rule):
    return sorted(line for r, line in pairs if r == rule)


# ----------------------------------------------------------------------
# rule registry sanity


class TestRegistry:
    def test_all_rule_ids_unique(self):
        ids = [r.id for r in ALL_RULES]
        assert len(ids) == len(set(ids))

    def test_every_family_present(self):
        families = {r.id[:3] for r in ALL_RULES}
        assert {"DET", "KEY", "LOC", "BAT", "OBS"} <= families

    def test_rules_have_descriptions(self):
        for rule in ALL_RULES:
            assert rule.description
            assert rule.severity in ("error", "warning")
        assert RULES_BY_ID["DET001"].severity == "error"


# ----------------------------------------------------------------------
# determinism family


class TestDeterminismRules:
    PAIRS, RAW = findings_for("src/repro/sim/bad_determinism.py")

    def test_det001_wall_clock_and_entropy(self):
        assert rule_lines(self.PAIRS, "DET001") == [16, 17, 18]

    def test_det002_global_rng(self):
        assert rule_lines(self.PAIRS, "DET002") == [23, 24, 25]

    def test_seeded_rng_not_flagged(self):
        # random.Random(seed) / np.random.default_rng(seed) at 30-31
        assert not any(line in (30, 31) for _, line in self.PAIRS)

    def test_det003_unordered_set_iteration(self):
        assert rule_lines(self.PAIRS, "DET003") == [37, 39, 46]

    def test_sorted_iteration_not_flagged(self):
        assert 40 not in rule_lines(self.PAIRS, "DET003")

    def test_justified_suppression_silences(self):
        assert 41 not in rule_lines(self.PAIRS, "DET003")

    def test_unjustified_suppression_fires_and_flags_meta(self):
        # line 46 keeps its DET003 *and* gains a META001
        assert 46 in rule_lines(self.PAIRS, "DET003")
        assert 46 in rule_lines(self.PAIRS, "META001")

    def test_out_of_scope_path_is_ignored(self):
        src = (FIXTURES / "src/repro/sim/bad_determinism.py").read_text()
        found = lint_file(pathlib.Path("elsewhere/module.py"),
                          ALL_RULES, source=src)
        assert not [f for f in found if f.rule.startswith("DET")]


# ----------------------------------------------------------------------
# cache-key family


class TestCacheKeyRules:
    PAIRS, RAW = findings_for("src/repro/runner/spec.py")

    def test_key001_missing_token_field(self):
        assert rule_lines(self.PAIRS, "KEY001") == [28]
        (msg,) = [f.message for f in self.RAW if f.rule == "KEY001"]
        assert "run_seed" in msg and "LeakyJob" in msg

    def test_cache_key_exempt_honoured(self):
        # `label` is also missing but allowlisted
        assert not any("label" in f.message for f in self.RAW)

    def test_key002_missing_prepare_field(self):
        assert rule_lines(self.PAIRS, "KEY002") == [41]
        (msg,) = [f.message for f in self.RAW if f.rule == "KEY002"]
        assert "batch" in msg and "shard" not in msg

    def test_complete_job_clean(self):
        # fields reached through a helper method count as read
        assert not any("CompleteJob" in f.message for f in self.RAW)

    def test_key003_malformed_allowlist(self):
        src = (
            "CACHE_KEY_EXEMPT = {'Job.field': ''}\n"
            "class Job:\n"
            "    x: int\n"
            "    def cache_token(self):\n"
            "        return {'x': self.x}\n"
        )
        found = lint_file(pathlib.Path("src/repro/runner/spec.py"),
                          ALL_RULES, source=src)
        assert any(f.rule == "KEY003" for f in found)


# ----------------------------------------------------------------------
# lock-discipline family


class TestLockRules:
    PAIRS, RAW = findings_for("src/repro/distrib/broker.py")

    def test_constructor_and_locked_paths_clean(self):
        flagged = {line for _, line in self.PAIRS}
        # __init__ body and good_path must produce nothing
        assert not flagged & set(range(11, 25))

    def test_lock001_unlocked_collection(self):
        assert rule_lines(self.PAIRS, "LOCK001") == [27]

    def test_lock002_unlocked_value_state(self):
        assert rule_lines(self.PAIRS, "LOCK002") == [30, 45]

    def test_holds_annotation_trusted_in_body(self):
        # _book touches driver.sweeps/journal at 33-34 under holds=_lock
        assert not any(line in (33, 34) for _, line in self.PAIRS)

    def test_lock003_holds_callee_needs_lock(self):
        assert rule_lines(self.PAIRS, "LOCK003") == [37]

    def test_lock004_unguarded_send_and_journal(self):
        assert rule_lines(self.PAIRS, "LOCK004") == [40, 45]

    def test_justified_suppression_silences(self):
        assert 48 not in {line for _, line in self.PAIRS}


# ----------------------------------------------------------------------
# batch-parity family


class TestBatchParityRules:
    PAIRS, RAW = findings_for("src/repro/sim/bad_batch.py")

    def test_batch001_orphan_fast_paths(self):
        assert rule_lines(self.PAIRS, "BATCH001") == [10, 14]

    def test_siblinged_and_private_batch_clean(self):
        flagged = rule_lines(self.PAIRS, "BATCH001")
        assert not set(flagged) & {22, 28, 31}

    def test_batch003_reassociating_reductions(self):
        assert rule_lines(self.PAIRS, "BATCH003") == [36, 37]

    def test_sequential_spellings_clean(self):
        assert not set(rule_lines(self.PAIRS, "BATCH003")) & {38, 39}

    def test_justified_suppression_silences(self):
        assert 40 not in rule_lines(self.PAIRS, "BATCH003")

    def test_batch002_ungated_foreign_call(self):
        pairs, _ = findings_for("src/repro/sim/bad_batch_gate.py")
        assert rule_lines(pairs, "BATCH002") == [9]

    def test_batch002_getattr_string_gate_passes(self):
        src = (
            "def run(rx, cols):\n"
            "    if getattr(rx, 'batch_capable', False):\n"
            "        return rx.observe_batch(cols)\n"
            "    return [rx.observe(c, 0.0) for c in cols]\n"
        )
        found = lint_file(pathlib.Path("src/repro/sim/gated.py"),
                          ALL_RULES, source=src)
        assert not [f for f in found if f.rule == "BATCH002"]


# ----------------------------------------------------------------------
# observability family


class TestObsRules:
    PAIRS, RAW = findings_for("src/repro/sim/bad_obs.py")

    def test_obs002_banned_imports(self):
        assert rule_lines(self.PAIRS, "OBS002") == [7, 8, 9]

    def test_metrics_imports_clean(self):
        assert not any(line in (10, 11) for _, line in self.PAIRS)

    def test_obs001_clock_calls(self):
        assert rule_lines(self.PAIRS, "OBS001") == [15, 17, 18, 19]

    def test_obs003_consumed_counter_returns(self):
        assert rule_lines(self.PAIRS, "OBS003") == [26, 27, 29]

    def test_statement_counters_clean(self):
        assert not any(line in (24, 25) for _, line in self.PAIRS)

    def test_justified_suppression_silences(self):
        assert 33 not in rule_lines(self.PAIRS, "OBS001")

    def test_out_of_scope_path_is_ignored(self):
        # the runner/distrib layers legitimately use the span API
        src = (FIXTURES / "src/repro/sim/bad_obs.py").read_text()
        found = lint_file(pathlib.Path("src/repro/runner/runner.py"),
                          ALL_RULES, source=src)
        assert not [f for f in found if f.rule.startswith("OBS")]

    def test_relative_metrics_import_clean(self):
        src = ("from ..obs import metrics as obs_metrics\n"
               "def f():\n"
               "    obs_metrics.count('sim.x')\n")
        found = lint_file(pathlib.Path("src/repro/sim/m.py"),
                          ALL_RULES, source=src)
        assert not [f for f in found if f.rule.startswith("OBS")]

    def test_relative_trace_import_flagged(self):
        src = "from ..obs import trace\n"
        found = lint_file(pathlib.Path("src/repro/sim/m.py"),
                          ALL_RULES, source=src)
        assert [f.rule for f in found] == ["OBS002"]


# ----------------------------------------------------------------------
# engine mechanics


class TestEngine:
    def test_syntax_error_is_meta002(self):
        found = lint_file(pathlib.Path("src/repro/sim/broken.py"),
                          ALL_RULES, source="def oops(:\n")
        assert [f.rule for f in found] == ["META002"]

    def test_unparseable_annotation_is_meta001(self):
        src = "x = 1  # reprolint: disable\n"
        found = lint_file(pathlib.Path("src/repro/sim/m.py"),
                          ALL_RULES, source=src)
        assert any(f.rule == "META001" for f in found)

    def test_multi_rule_disable(self):
        src = ("import numpy as np\n"
               "def f(values):\n"
               "    return np.sum(values)"
               "  # reprolint: disable=BATCH003,DET003 -- integer totals\n")
        found = lint_file(pathlib.Path("src/repro/sim/m.py"),
                          ALL_RULES, source=src)
        assert not [f for f in found if f.rule == "BATCH003"]

    def test_disable_wrong_rule_does_not_silence(self):
        src = ("import numpy as np\n"
               "def f(values):\n"
               "    return np.sum(values)"
               "  # reprolint: disable=DET001 -- wrong rule id\n")
        found = lint_file(pathlib.Path("src/repro/sim/m.py"),
                          ALL_RULES, source=src)
        assert [f.rule for f in found] == ["BATCH003"]

    def test_finding_format(self):
        found = lint_file(pathlib.Path("src/repro/sim/m.py"),
                          ALL_RULES,
                          source="import time\nt = time.time()\n")
        assert len(found) == 1
        text = found[0].format()
        assert text.startswith("src/repro/sim/m.py:2: error: DET001:")

    def test_run_paths_on_fixture_tree(self):
        findings, n_files = run_paths([str(FIXTURES)])
        assert n_files >= 5
        rules_hit = {f.rule for f in findings}
        assert {"DET001", "DET002", "DET003", "KEY001", "KEY002",
                "LOCK001", "LOCK002", "LOCK003", "LOCK004",
                "BATCH001", "BATCH002", "BATCH003",
                "OBS001", "OBS002", "OBS003"} <= rules_hit


# ----------------------------------------------------------------------
# CLI


class TestCli:
    ENV_PATH = str(REPO / "tools")

    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "reprolint", *args],
            capture_output=True, text=True, cwd=str(REPO),
            env={"PYTHONPATH": self.ENV_PATH, "PATH": "/usr/bin:/bin",
                 "HOME": "/tmp"},
        )

    def test_findings_exit_1(self):
        proc = self._run(str(FIXTURES))
        assert proc.returncode == 1
        assert "BATCH002" in proc.stdout
        assert "bad_batch_gate.py:9" in proc.stdout

    def test_select_narrows_rules(self):
        proc = self._run("--select", "DET003", str(FIXTURES))
        assert proc.returncode == 1
        assert "DET003" in proc.stdout
        assert "LOCK001" not in proc.stdout

    def test_unknown_rule_exit_2(self):
        proc = self._run("--select", "NOPE999", str(FIXTURES))
        assert proc.returncode == 2

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for rule in ALL_RULES:
            assert rule.id in proc.stdout


# ----------------------------------------------------------------------
# the real gate (CI lint lane; enable locally with --reprolint)


@pytest.mark.reprolint
class TestTreeGate:
    def test_full_tree_clean(self):
        findings, n_files = run_paths([str(REPO / "src"),
                                       str(REPO / "tools")])
        assert n_files > 50
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_cli_clean_exit_0(self):
        proc = subprocess.run(
            [sys.executable, "-m", "reprolint", "src", "tools"],
            capture_output=True, text=True, cwd=str(REPO),
            env={"PYTHONPATH": str(REPO / "tools"),
                 "PATH": "/usr/bin:/bin", "HOME": "/tmp"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    @pytest.mark.skipif(importlib.util.find_spec("mypy") is None,
                        reason="mypy not installed in this environment")
    def test_mypy_gate(self):
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
            capture_output=True, text=True, cwd=str(REPO),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
