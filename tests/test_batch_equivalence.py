"""Batch/object equivalence: the columnar fast path must be bitwise-exact.

The vectorized pipeline (`PipelineConfig(batch=True)` /
``TwoSwitchPipeline.run_batch``) promises **bitwise-identical** results to
the per-object reference implementation — same float-op order
(``max(t, free_at) + size/rate``), same merge stability, same flow-table
contents *and dict insertion order*.  These tests pin that promise at every
layer: the queue scan, the interpolation batch flush, whole pipeline runs
over hypothesis-generated workloads, and full experiment conditions
(including every ablation knob and the fallback paths).
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.demux import SingleSenderDemux
from repro.core.injection import AdaptiveInjection, StaticInjection
from repro.core.interpolation import ESTIMATORS, InterpolationBuffer, interpolate_batch
from repro.core.receiver import RliReceiver
from repro.core.sender import RefTemplate, RliSender
from repro.net.addressing import Prefix, ip_to_int
from repro.net.packet import Packet, PacketKind
from repro.sim.pipeline import PipelineConfig, TwoSwitchPipeline
from repro.sim.queue import FifoQueue
from repro.sim.red import RedQueue
from repro.experiments.workloads import run_condition, summarize_condition
from repro.traffic.crosstraffic import BurstyModel, UniformModel
from repro.traffic.synthetic import TraceConfig, generate_trace

REGULAR_PREFIX = Prefix.parse("10.1.0.0/16")


def queue_state(queue):
    """Every observable scalar of a queue, for bitwise comparison."""
    s = queue.stats
    return (s.arrivals, s.accepted, s.dropped, s.bytes_in, s.bytes_accepted,
            s.bytes_dropped, s.total_delay, s.max_delay, s.last_departure,
            queue._free_at)


def flow_table_state(table):
    """(key, full accumulator state) rows in dict insertion order."""
    return [(k, (v.count, v.mean, v._m2, v.min, v.max)) for k, v in table.items()]


def receiver_state(rx):
    state = {
        "counts": (rx.regulars_measured, rx.regulars_ignored,
                   rx.references_accepted, rx.references_ignored,
                   rx.missing_tap, rx.unestimated),
        "true": flow_table_state(rx.flow_true),
        "estimated": flow_table_state(rx.flow_estimated),
    }
    if rx.flow_true_quantiles is not None:
        state["true_q"] = [(k, sorted(q.items())) for k, q in rx.flow_true_quantiles.items()]
        state["est_q"] = [(k, sorted(q.items())) for k, q in rx.flow_estimated_quantiles.items()]
    return state


# ----------------------------------------------------------------------
# queue scan


class TestOfferBatch:
    @given(st.integers(0, 2**31), st.sampled_from([None, 3000, 20000]),
           st.floats(0.0, 1e-5))
    @settings(max_examples=25, deadline=None)
    def test_scan_matches_per_packet_offers(self, seed, buffer_bytes, proc_delay):
        rng = np.random.default_rng(seed)
        n = 200
        arrivals = np.sort(rng.uniform(0, 0.01, n))
        if n >= 2:  # exercise exact arrival ties
            arrivals[1] = arrivals[0]
        sizes = rng.integers(64, 1501, n)
        scalar = FifoQueue(8e6, buffer_bytes, proc_delay)
        batch = FifoQueue(8e6, buffer_bytes, proc_delay)
        expected = []
        for t, size in zip(arrivals.tolist(), sizes.tolist()):
            dep = scalar.offer(Packet(src=1, dst=2, size=size, ts=t), t)
            expected.append(dep)
        departures, accepted = batch.offer_batch(arrivals, sizes)
        assert queue_state(scalar) == queue_state(batch)
        for exp, dep, ok in zip(expected, departures.tolist(), accepted.tolist()):
            if exp is None:
                assert not ok and np.isnan(dep)
            else:
                assert ok and dep == exp  # bitwise: same float op order

    def test_interleaving_offer_and_offer_batch(self):
        """A batch offer continues exactly where scalar offers left off."""
        q1 = FifoQueue(8e6, 5000, 1e-6)
        q2 = FifoQueue(8e6, 5000, 1e-6)
        head = [(0.0, 1000), (0.0001, 1500), (0.0002, 600)]
        tail = [(0.0003, 1500), (0.0004, 900)]
        for t, size in head + tail:
            q1.offer(Packet(src=1, dst=2, size=size, ts=t), t)
        for t, size in head:
            q2.offer(Packet(src=1, dst=2, size=size, ts=t), t)
        q2.offer_batch(np.array([t for t, _ in tail]), np.array([s for _, s in tail]))
        assert queue_state(q1) == queue_state(q2)

    def test_red_queue_refuses_the_scan(self):
        red = RedQueue(8e6, 256 * 1024, seed=1)
        with pytest.raises(NotImplementedError):
            red.offer_batch(np.array([0.0]), np.array([64]))

    def test_empty_batch_is_a_noop(self):
        q = FifoQueue(8e6)
        departures, accepted = q.offer_batch(np.empty(0), np.empty(0, dtype=np.int64))
        assert len(departures) == 0 and len(accepted) == 0
        assert q.stats.arrivals == 0


# ----------------------------------------------------------------------
# interpolation batch flush


class TestInterpolateBatch:
    @given(st.integers(0, 2**31), st.sampled_from(sorted(ESTIMATORS)),
           st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_matches_buffer_stream(self, seed, estimator, n_refs):
        rng = np.random.default_rng(seed)
        n_regs = int(rng.integers(0, 40))
        events = sorted(
            [("reg", t) for t in rng.uniform(0, 1, n_regs)]
            + [("ref", t) for t in rng.uniform(0, 1, n_refs)],
            key=lambda e: e[1],
        )
        buffer = InterpolationBuffer(estimator)
        expected = {}
        reg_times, ref_times, ref_delays, intervals = [], [], [], []
        for kind, t in events:
            if kind == "reg":
                buffer.add_regular(t, key=(1, 2, 3, 4, 6), true_delay=0.0)
                reg_times.append(t)
                intervals.append(len(ref_times))
            else:
                delay = float(rng.uniform(1e-6, 1e-3))
                for est in buffer.add_reference(t, delay):
                    expected[est.arrival] = est.estimated
                ref_times.append(t)
                ref_delays.append(delay)
        for est in buffer.flush():
            expected[est.arrival] = est.estimated
        got = interpolate_batch(np.array(reg_times), np.array(ref_times),
                                np.array(ref_delays), estimator=estimator,
                                intervals=np.array(intervals, dtype=np.int64))
        assert got.tolist() == [expected[t] for t in reg_times]  # bitwise

    def test_coincident_references_use_the_degenerate_midpoint(self):
        # two refs at the same instant: linear degenerates to the average
        got = interpolate_batch(np.array([0.5]), np.array([0.5, 0.5]),
                                np.array([2.0, 4.0]),
                                intervals=np.array([1]))
        assert got.tolist() == [3.0]

    def test_no_references_is_an_error(self):
        with pytest.raises(ValueError):
            interpolate_batch(np.array([0.1]), np.empty(0), np.empty(0))

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ValueError):
            interpolate_batch(np.array([0.1]), np.array([0.2]), np.array([1.0]),
                              estimator="cubic")


# ----------------------------------------------------------------------
# whole-pipeline property: random TraceConfigs, both drivers


def build_traces(seed, n_reg, n_cross, duration, mean_gap):
    reg = generate_trace(
        TraceConfig(duration=duration, n_packets=n_reg, mean_flow_pkts=8.0,
                    mean_gap=mean_gap),
        seed=seed, name="regular")
    cross = generate_trace(
        TraceConfig(duration=duration, n_packets=n_cross, mean_flow_pkts=8.0,
                    src_base="10.9.0.0", dst_base="10.10.0.0"),
        seed=seed + 1, name="cross")
    return reg, cross


def make_sender(rate_bps, scheme):
    policy = AdaptiveInjection(5, 60) if scheme == "adaptive" else StaticInjection(25)
    template = RefTemplate(src=ip_to_int("10.1.0.0") + 1,
                           dst=ip_to_int("10.2.255.254"))
    return RliSender(sender_id=1, link_rate_bps=rate_bps, policy=policy,
                     templates={0: template})


class TestPipelineProperty:
    @given(
        seed=st.integers(0, 2**31),
        n_reg=st.integers(300, 1200),
        headroom=st.floats(0.25, 0.9),
        buffer_kb=st.sampled_from([2, 8, 64, None]),
        cross_prob=st.sampled_from([0.0, 0.4, 0.9]),
        bursty=st.booleans(),
        scheme=st.sampled_from([None, "static", "adaptive"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_workloads_bitwise_identical(self, seed, n_reg, headroom,
                                                buffer_kb, cross_prob, bursty,
                                                scheme):
        duration = 0.25
        reg, cross = build_traces(seed, n_reg, 2 * n_reg, duration, 1e-3)
        rate = reg.total_bytes * 8.0 / (duration * headroom)
        buffer_bytes = buffer_kb * 1024 if buffer_kb else None
        if bursty:
            model = BurstyModel(cross_prob, 0.06, 0.12, seed=seed)
        else:
            model = UniformModel(cross_prob, seed=seed)

        def drive(batch):
            cfg = PipelineConfig(rate1_bps=rate, rate2_bps=rate,
                                 buffer1_bytes=buffer_bytes,
                                 buffer2_bytes=buffer_bytes,
                                 proc_delay=1e-6, batch=batch)
            sender = make_sender(rate, scheme) if scheme else None
            receiver = RliReceiver(
                demux=SingleSenderDemux(1, regular_prefixes=[REGULAR_PREFIX]))
            pipeline = TwoSwitchPipeline(cfg)
            if batch:
                result = pipeline.run_batch(reg, model.arrivals_batch(cross),
                                            sender=sender, receiver=receiver)
            else:
                result = pipeline.run(reg.clone_packets(), model.arrivals(cross),
                                      sender=sender, receiver=receiver)
            receiver.finalize()
            return result, receiver, sender

        res_o, rx_o, tx_o = drive(batch=False)
        res_b, rx_b, tx_b = drive(batch=True)
        assert queue_state(res_o.queue1) == queue_state(res_b.queue1)
        assert queue_state(res_o.queue2) == queue_state(res_b.queue2)
        assert res_o.arrivals2 == res_b.arrivals2
        assert res_o.drops2 == res_b.drops2
        assert res_o.refs_injected == res_b.refs_injected
        assert res_o.duration == res_b.duration
        assert receiver_state(rx_o) == receiver_state(rx_b)
        if scheme:
            assert tx_o.refs_injected == tx_b.refs_injected
            assert tx_o.regulars_seen == tx_b.regulars_seen
            assert tx_o.utilization.estimate == tx_b.utilization.estimate

    def test_collect_estimates_identical_in_emission_order(self):
        reg, cross = build_traces(5, 800, 1600, 0.25, 1e-3)
        rate = reg.total_bytes * 8.0 / (0.25 * 0.5)

        def drive(batch):
            cfg = PipelineConfig(rate1_bps=rate, rate2_bps=rate,
                                 buffer1_bytes=64 * 1024, buffer2_bytes=64 * 1024,
                                 proc_delay=1e-6, batch=batch)
            receiver = RliReceiver(
                demux=SingleSenderDemux(1, regular_prefixes=[REGULAR_PREFIX]),
                collect_estimates=True)
            sender = make_sender(rate, "adaptive")
            pipeline = TwoSwitchPipeline(cfg)
            model = UniformModel(0.5, seed=3)
            if batch:
                pipeline.run_batch(reg, model.arrivals_batch(cross),
                                   sender=sender, receiver=receiver)
            else:
                pipeline.run(reg.clone_packets(), model.arrivals(cross),
                             sender=sender, receiver=receiver)
            receiver.finalize()
            return receiver.estimates

        est_o = drive(batch=False)
        est_b = drive(batch=True)
        assert len(est_o) == len(est_b) > 0
        for a, b in zip(est_o, est_b):
            assert (a.key, a.arrival, a.estimated, a.true_delay) == \
                (b.key, b.arrival, b.estimated, b.true_delay)


# ----------------------------------------------------------------------
# experiment conditions: every knob, plus fallbacks


CONDITION_KNOBS = [
    {},
    {"estimator": "previous"},
    {"estimator": "nearest"},
    {"scheme": "static", "static_n": 13},
    {"clock_offset": 5e-6},
    {"max_flows": 32},
    {"quantiles": (0.5, 0.99)},
    {"scheme": None},
    {"model": "bursty"},
    {"aqm": "red"},  # falls back to the object path inside run_batch
]


class TestConditionEquivalence:
    @pytest.mark.parametrize("knobs", CONDITION_KNOBS,
                             ids=[str(sorted(k.items())) for k in CONDITION_KNOBS])
    def test_summaries_equal(self, tiny_workload, knobs):
        knobs = dict(knobs)
        scheme = knobs.pop("scheme", "adaptive")
        model = knobs.pop("model", "random")
        estimator = knobs.get("estimator", "linear")
        summaries = []
        for batch in (False, True):
            condition = run_condition(tiny_workload, scheme, model, 0.93,
                                      batch=batch, **knobs)
            summaries.append(summarize_condition(condition, estimator=estimator))
        assert summaries[0] == summaries[1]

    def test_batch_summary_survives_cache_round_trip(self, tiny_workload):
        condition = run_condition(tiny_workload, "adaptive", "random", 0.67,
                                  batch=True)
        summary = summarize_condition(condition)
        assert pickle.loads(pickle.dumps(summary)) == summary

    @pytest.mark.parametrize("log_mode", ["tuple", "array"])
    @pytest.mark.parametrize("record_only", [False, True])
    def test_observation_log_recorded_identically_on_fast_path(
            self, tiny_workload, log_mode, record_only):
        """Recording receivers ride the fast path and write the identical
        per-event observation log (tuple list or columnar), alongside
        identical live estimation state when not record-only."""
        from repro.core.obslog import make_observation_log

        logs = []
        receivers = []
        for batch in (False, True):
            log = make_observation_log(log_mode)
            receiver = tiny_workload.make_receiver(observation_log=log,
                                                   record_only=record_only)
            assert receiver.batch_capable
            sender = tiny_workload.make_sender("adaptive")
            pipeline = TwoSwitchPipeline(PipelineConfig(
                rate1_bps=tiny_workload.rate_bps, rate2_bps=tiny_workload.rate_bps,
                buffer1_bytes=tiny_workload.cfg.buffer_bytes,
                buffer2_bytes=tiny_workload.cfg.buffer_bytes,
                proc_delay=tiny_workload.cfg.proc_delay, batch=batch))
            cross_b = tiny_workload.cross_arrivals_batch("random", 0.67)
            if batch:
                pipeline.run_batch(tiny_workload.regular, cross_b,
                                   sender=sender, receiver=receiver,
                                   duration=tiny_workload.cfg.duration)
            else:
                pipeline.run(tiny_workload.regular.clone_packets(),
                             tiny_workload.cross_arrivals("random", 0.67),
                             sender=sender, receiver=receiver,
                             duration=tiny_workload.cfg.duration)
            receiver.finalize()
            logs.append(log)
            receivers.append(receiver)
        assert list(logs[0]) == list(logs[1])
        assert receiver_state(receivers[0]) == receiver_state(receivers[1])

    def test_exotic_observation_log_forces_fallback_with_identical_log(
            self, tiny_workload):
        """A log type that is neither a list nor extend_batch-capable (here
        a deque) keeps the receiver off the fast path; the pipeline must
        fall back and produce the identical per-event log."""
        from collections import deque

        logs = []
        for batch in (False, True):
            log = deque()
            receiver = tiny_workload.make_receiver(observation_log=log)
            assert not receiver.batch_capable
            sender = tiny_workload.make_sender("adaptive")
            pipeline = TwoSwitchPipeline(PipelineConfig(
                rate1_bps=tiny_workload.rate_bps, rate2_bps=tiny_workload.rate_bps,
                buffer1_bytes=tiny_workload.cfg.buffer_bytes,
                buffer2_bytes=tiny_workload.cfg.buffer_bytes,
                proc_delay=tiny_workload.cfg.proc_delay, batch=batch))
            model = UniformModel(0.5, seed=9)
            if batch:
                pipeline.run_batch(tiny_workload.regular,
                                   model.arrivals_batch(tiny_workload.cross),
                                   sender=sender, receiver=receiver,
                                   duration=tiny_workload.cfg.duration)
            else:
                pipeline.run(tiny_workload.regular.clone_packets(),
                             model.arrivals(tiny_workload.cross),
                             sender=sender, receiver=receiver,
                             duration=tiny_workload.cfg.duration)
            receiver.finalize()
            logs.append(log)
        assert list(logs[0]) == list(logs[1]) and len(logs[0]) > 0

    def test_custom_classifier_sender_forces_fallback(self, tiny_workload):
        """A sender whose classifier inspects packets keeps exact numbers
        through the per-object fallback."""
        def drive(batch):
            sender = RliSender(
                sender_id=1, link_rate_bps=tiny_workload.rate_bps,
                policy=StaticInjection(40),
                templates={0: RefTemplate(src=1, dst=2)},
                classify=lambda packet: 0 if packet.sport % 2 else None)
            assert not sender.batch_capable
            receiver = tiny_workload.make_receiver()
            pipeline = TwoSwitchPipeline(PipelineConfig(
                rate1_bps=tiny_workload.rate_bps, rate2_bps=tiny_workload.rate_bps,
                proc_delay=tiny_workload.cfg.proc_delay, batch=batch))
            if batch:
                pipeline.run_batch(tiny_workload.regular,
                                   tiny_workload.cross_arrivals_batch("random", 0.67),
                                   sender=sender, receiver=receiver,
                                   duration=tiny_workload.cfg.duration)
            else:
                pipeline.run(tiny_workload.regular.clone_packets(),
                             tiny_workload.cross_arrivals("random", 0.67),
                             sender=sender, receiver=receiver,
                             duration=tiny_workload.cfg.duration)
            receiver.finalize()
            return sender.refs_injected, receiver_state(receiver)

        assert drive(False) == drive(True)

    def test_run_dispatches_to_batch_when_configured(self, tiny_workload):
        """PipelineConfig(batch=True) + batchable inputs = fast path via run()."""
        cfg = PipelineConfig(rate1_bps=tiny_workload.rate_bps,
                             rate2_bps=tiny_workload.rate_bps,
                             proc_delay=tiny_workload.cfg.proc_delay, batch=True)
        result = TwoSwitchPipeline(cfg).run(
            tiny_workload.regular,
            tiny_workload.cross_arrivals_batch("random", 0.67),
            duration=tiny_workload.cfg.duration)
        baseline = TwoSwitchPipeline(PipelineConfig(
            rate1_bps=tiny_workload.rate_bps, rate2_bps=tiny_workload.rate_bps,
            proc_delay=tiny_workload.cfg.proc_delay)).run(
            tiny_workload.regular.clone_packets(),
            tiny_workload.cross_arrivals("random", 0.67),
            duration=tiny_workload.cfg.duration)
        assert queue_state(result.queue2) == queue_state(baseline.queue2)
        assert result.arrivals2 == baseline.arrivals2


class TestBatchJobs:
    def test_batch_jobspec_summary_matches_object_jobspec(self, tiny_config):
        from repro.runner import JobSpec, ParallelRunner

        runner = ParallelRunner()
        plain = runner.run_one(JobSpec.from_config(tiny_config, "adaptive", "random", 0.67))
        batched = runner.run_one(JobSpec.from_config(tiny_config, "adaptive", "random", 0.67,
                                                     batch=True))
        assert plain == batched

    def test_batch_flag_changes_cache_token(self, tiny_config):
        from repro.runner import JobSpec

        plain = JobSpec.from_config(tiny_config, "adaptive", "random", 0.67)
        batched = JobSpec.from_config(tiny_config, "adaptive", "random", 0.67,
                                      batch=True)
        assert plain.cache_token() != batched.cache_token()

    def test_fig4_driver_identical_with_batch(self, tiny_config):
        from repro.experiments.fig4 import run_fig4ab

        plain = run_fig4ab(tiny_config)
        batched = run_fig4ab(tiny_config, batch=True)
        for a, b in zip(plain, batched):
            assert a.label == b.label
            assert a.summary == b.summary
            assert a.summary_row() == b.summary_row()

# ----------------------------------------------------------------------
# multi-stream receiver batch partition


class TestMultiStreamBatchEmission:
    """Regression for the receiver's multi-stream batch partition.

    The per-stream loop in ``observe_batch`` unions
    ``refs_by_stream.keys()`` with the set of regular streams; iteration
    over that union is ``sorted`` so set-iteration order can never
    become load-bearing (reprolint DET003).  This pins the batch path
    against the scalar reference on a stream mix chosen to disagree
    with any convenient ordering: stream ids first appear in
    *descending* order, one stream has regulars but no references
    (stays unestimated forever), and one has references but no
    regulars (both union sides contribute streams the other lacks).
    """

    PREFIXES = [
        (Prefix.parse("10.9.0.0/16"), 9),
        (Prefix.parse("10.4.0.0/16"), 4),
        (Prefix.parse("10.2.0.0/16"), 2),
        (Prefix.parse("10.7.0.0/16"), 7),   # references only
    ]

    def _events(self):
        """Fresh ``(now, packet)`` observations in arrival order."""
        dst = ip_to_int("10.200.0.1")

        def reg(stream, host, now, sport):
            p = Packet(src=ip_to_int(f"10.{stream}.0.{host}"), dst=dst,
                       sport=sport, dport=9, size=200, ts=now - 0.0004)
            return now, p

        def ref(sender, now, delay):
            p = Packet(src=ip_to_int(f"10.{sender}.0.250"), dst=dst,
                       size=64, ts=now - delay, kind=PacketKind.REFERENCE,
                       sender_id=sender, ref_timestamp=now - delay)
            return now, p

        return [
            reg(9, 1, 0.001, 1111),
            ref(9, 0.002, 0.00030),
            reg(4, 1, 0.003, 2222),
            reg(9, 2, 0.004, 1112),
            ref(4, 0.005, 0.00040),
            reg(2, 1, 0.006, 3333),         # stream 2: never estimated
            ref(7, 0.007, 0.00020),         # stream 7: references only
            ref(9, 0.008, 0.00035),
            reg(4, 2, 0.009, 2223),
            reg(2, 2, 0.010, 3334),
            ref(4, 0.011, 0.00045),
            reg(9, 1, 0.012, 1111),         # past stream 9's last reference
            reg(4, 1, 0.013, 2222),         # past stream 4's last reference
        ]

    def _receiver(self):
        from repro.core.demux import UpstreamPrefixDemux

        return RliReceiver(UpstreamPrefixDemux(self.PREFIXES),
                           collect_estimates=True)

    def _drive_scalar(self):
        rx = self._receiver()
        for now, pkt in self._events():
            if pkt.is_regular:
                pkt.tap_time = pkt.ts   # matches batch taps=None semantics
            rx.observe(pkt, now)
        rx.finalize()
        return rx

    def _drive_batch(self):
        from repro.traffic.batch import PacketBatch

        rx = self._receiver()
        assert rx.batch_capable
        events = self._events()
        times = np.array([now for now, _ in events], dtype=np.float64)
        kinds = np.array([int(p.kind) for _, p in events], dtype=np.int64)
        regulars = [p for _, p in events if p.is_regular]
        refs = [p for _, p in events if p.is_reference]
        header_index = np.full(len(events), -1, dtype=np.int64)
        row = 0
        for i, (_, p) in enumerate(events):
            if p.is_regular:
                header_index[i] = row
                row += 1
        rx.observe_batch(times, kinds, PacketBatch.from_packets(regulars),
                         header_index, None, refs)
        rx.finalize()   # documented no-op after the one-shot batch
        return rx

    def test_state_and_emission_identical(self):
        scalar = self._drive_scalar()
        batch = self._drive_batch()
        assert receiver_state(scalar) == receiver_state(batch)
        assert len(scalar.estimates) == len(batch.estimates) > 0
        for a, b in zip(scalar.estimates, batch.estimates):
            assert (a.key, a.arrival, a.estimated, a.true_delay) == \
                (b.key, b.arrival, b.estimated, b.true_delay)

    def test_exercises_both_union_sides(self):
        batch = self._drive_batch()
        # stream 2 (regulars, no refs) must stay unestimated; stream 7
        # (refs, no regulars) must still be counted as accepted
        assert batch.unestimated > 0
        assert batch.references_accepted == 5
        streams = {k for k, _ in receiver_state(batch)["estimated"]}
        assert streams   # streams 9 and 4 produced estimates
