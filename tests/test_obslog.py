"""Array-backed observation logs: equivalence with tuple mode.

The satellite guarantee: recording a receiver's observation stream into
:class:`~repro.core.obslog.ObservationColumns` instead of a list changes
*nothing* about what replays out of it — every event round-trips the
typed columns bit-exactly, so replayed tables (and therefore every study
built on sharded replay) are byte-identical between modes.
"""

import pickle

import pytest

from repro.core.obslog import ObservationColumns, make_observation_log
from repro.core.receiver import REF_OBS, REG_OBS
from repro.core.replay import replay_observations, replay_observations_multi


def synthetic_events():
    a, b = (167837697, 167903233, 4242, 80, 6), (2, 9, 2, 2, 17)
    return [
        (REF_OBS, 0, 0.010, 20e-6),
        (REG_OBS, 0, 0.012, a, 25.3e-6),
        (REG_OBS, 1, 0.014, b, 28.7e-6),
        (REF_OBS, 1, 0.020, 30e-6),
        (REG_OBS, 0, 0.031, a, 31e-6),
    ]


class TestObservationColumns:
    def test_roundtrips_exact_tuples(self):
        events = synthetic_events()
        columns = ObservationColumns(events)
        assert len(columns) == len(events)
        assert list(columns) == events

    def test_floats_roundtrip_bitwise(self):
        # values that don't have short decimal representations
        value = 1.0 / 3.0
        now = 2.0 / 7.0
        columns = ObservationColumns([(REF_OBS, 0, now, value)])
        _, _, got_now, got_value = next(iter(columns))
        assert (got_now, got_value) == (now, value)
        assert pickle.dumps(got_value) == pickle.dumps(value)

    def test_append_api_matches_list(self):
        as_list, as_columns = [], ObservationColumns()
        for event in synthetic_events():
            as_list.append(event)
            as_columns.append(event)
        assert list(as_columns) == as_list

    def test_rejects_unknown_tag(self):
        with pytest.raises(ValueError):
            ObservationColumns().append((7, 0, 0.0, 0.0))

    def test_pickle_roundtrip(self):
        columns = ObservationColumns(synthetic_events())
        clone = pickle.loads(pickle.dumps(columns))
        assert list(clone) == list(columns)

    def test_columns_are_smaller_than_tuples(self):
        import sys

        events = synthetic_events() * 200
        columns = ObservationColumns(events)
        tuple_floor = sum(sys.getsizeof(e) for e in events)  # tuples alone
        assert columns.nbytes < tuple_floor

    def test_numpy_views(self):
        columns = ObservationColumns(synthetic_events())
        arrays = columns.arrays()
        assert arrays["tag"].tolist() == [REF_OBS, REG_OBS, REG_OBS,
                                          REF_OBS, REG_OBS]
        assert arrays["time"].tolist() == [e[2] for e in synthetic_events()]
        assert arrays["key"][0][1] == 167837697


class TestMakeObservationLog:
    def test_modes(self):
        assert make_observation_log(None) is None
        assert make_observation_log(False) is None
        assert make_observation_log(True) == []
        assert make_observation_log("tuple") == []
        assert isinstance(make_observation_log("array"), ObservationColumns)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            make_observation_log("parquet")


class TestReplayEquivalence:
    def test_synthetic_replay_identical(self):
        events = synthetic_events()
        from_list = replay_observations(events)
        from_columns = replay_observations(ObservationColumns(events))
        assert pickle.dumps(from_list.estimated) == pickle.dumps(from_columns.estimated)
        assert pickle.dumps(from_list.true) == pickle.dumps(from_columns.true)
        assert from_list.unestimated == from_columns.unestimated

    def test_recorded_receiver_replay_identical(self, tiny_workload):
        """Record one real pipeline run twice — list log and columnar log —
        and replay both: bitwise-identical tables, sharded or not."""
        from repro.sim.pipeline import TwoSwitchPipeline

        logs = {"tuple": [], "array": ObservationColumns()}
        for log in logs.values():
            sender = tiny_workload.make_sender("static")
            receiver = tiny_workload.make_receiver(observation_log=log,
                                                   record_only=True)
            TwoSwitchPipeline(tiny_workload.pipeline_config).run(
                regular=tiny_workload.regular.clone_packets(),
                cross=tiny_workload.cross_arrivals("random", 0.67),
                sender=sender,
                receiver=receiver,
                duration=tiny_workload.cfg.duration,
            )
            receiver.finalize()
        assert list(logs["array"]) == logs["tuple"]
        full_list = replay_observations(logs["tuple"])
        full_columns = replay_observations(logs["array"])
        assert pickle.dumps(full_list.estimated) == pickle.dumps(full_columns.estimated)
        for shard in range(3):
            a = replay_observations(logs["tuple"], shard=shard, n_shards=3)
            b = replay_observations(logs["array"], shard=shard, n_shards=3)
            assert pickle.dumps(a.estimated) == pickle.dumps(b.estimated)
            assert pickle.dumps(a.true) == pickle.dumps(b.true)

    def test_deployment_array_mode_matches_tuple_mode(self):
        """The record_observations knob end to end: an RLIR deployment
        recorded in both modes replays to identical segment tables."""
        from repro.core.injection import StaticInjection
        from repro.core.rlir import RlirDeployment
        from repro.sim.topology import FatTree, LinkParams
        from repro.traffic.synthetic import TraceConfig, generate_fattree_trace

        segment_logs = {}
        for mode in ("tuple", "array"):
            ft = FatTree(4, LinkParams(rate_bps=1e9, buffer_bytes=256 * 1024))
            deployment = RlirDeployment(
                ft, src=(0, 0), dst=(1, 0),
                policy_factory=lambda: StaticInjection(20),
                record_observations=mode,
            )
            pairs = [(ft.host_address(0, 0, h), ft.host_address(1, 0, g))
                     for h in range(2) for g in range(2)]
            trace = generate_fattree_trace(
                TraceConfig(duration=1.0, n_packets=1500, mean_flow_pkts=12.0),
                pairs, seed=5)
            deployment.run([trace])
            segment_logs[mode] = deployment.observation_logs()
        for (name_t, log_t), (name_a, log_a) in zip(segment_logs["tuple"],
                                                    segment_logs["array"]):
            assert name_t == name_a
            assert isinstance(log_a, ObservationColumns)
            assert list(log_a) == log_t
            replay_t = replay_observations(log_t)
            replay_a = replay_observations(log_a)
            assert pickle.dumps(replay_t.estimated) == pickle.dumps(replay_a.estimated)


class TestReplayMulti:
    def test_multi_matches_per_shard_bitwise(self, tiny_workload):
        """The distributed chunk envelope: one-pass multi-shard replay is
        bitwise-identical to shard-by-shard replay."""
        from repro.sim.pipeline import TwoSwitchPipeline

        log = ObservationColumns()
        sender = tiny_workload.make_sender("static")
        receiver = tiny_workload.make_receiver(observation_log=log,
                                               record_only=True)
        TwoSwitchPipeline(tiny_workload.pipeline_config).run(
            regular=tiny_workload.regular.clone_packets(),
            cross=tiny_workload.cross_arrivals("random", 0.67),
            sender=sender,
            receiver=receiver,
            duration=tiny_workload.cfg.duration,
        )
        receiver.finalize()
        multi = replay_observations_multi(log, shards=(0, 2, 3), n_shards=4)
        assert sorted(multi) == [0, 2, 3]
        for shard, tables in multi.items():
            single = replay_observations(log, shard=shard, n_shards=4)
            assert pickle.dumps(single.estimated) == pickle.dumps(tables.estimated)
            assert pickle.dumps(single.true) == pickle.dumps(tables.true)
            assert single.unestimated == tables.unestimated

    def test_multi_validates_shards(self):
        events = synthetic_events()
        with pytest.raises(ValueError):
            replay_observations_multi(events, shards=(0, 0), n_shards=2)
        with pytest.raises(ValueError):
            replay_observations_multi(events, shards=(5,), n_shards=2)

    def test_multi_rejects_unknown_tag(self):
        with pytest.raises(ValueError):
            replay_observations_multi([(9, 0, 0.0, 0.0)], shards=(0,), n_shards=1)
