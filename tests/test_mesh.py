"""Tests for the multi-pair RLIR mesh (shared core instances)."""

import pytest

from repro.analysis.cdf import Ecdf
from repro.analysis.metrics import flow_mean_errors
from repro.core.injection import StaticInjection
from repro.core.mesh import RlirMesh
from repro.sim.topology import FatTree, LinkParams
from repro.traffic.synthetic import TraceConfig, generate_fattree_trace


def build_fattree():
    return FatTree(4, LinkParams(rate_bps=40e6, buffer_bytes=128 * 1024,
                                 proc_delay=1e-6, prop_delay=0.5e-6))


def pair_trace(ft, src, dst, n_packets=5000, seed=1):
    pairs = [(ft.host_address(*src, h), ft.host_address(*dst, g))
             for h in range(2) for g in range(2)]
    cfg = TraceConfig(duration=1.0, n_packets=n_packets, mean_flow_pkts=12.0)
    return generate_fattree_trace(cfg, pairs, seed=seed,
                                  name=f"{src}->{dst}")


PAIRS = [((0, 0), (1, 0)), ((0, 1), (2, 1))]


def run_mesh(ft=None, pairs=PAIRS):
    ft = ft or build_fattree()
    mesh = RlirMesh(ft, pairs, policy_factory=lambda: StaticInjection(20))
    traces = [pair_trace(ft, src, dst, seed=10 + i)
              for i, (src, dst) in enumerate(pairs)]
    result = mesh.run(traces)
    return ft, mesh, result


class TestMeshWiring:
    def test_validation(self):
        ft = build_fattree()
        with pytest.raises(ValueError):
            RlirMesh(ft, [])
        with pytest.raises(ValueError):
            RlirMesh(ft, [((0, 0), (0, 0))])
        with pytest.raises(ValueError):
            RlirMesh(ft, [((0, 0), (0, 1))])

    def test_shared_core_receivers(self):
        _, mesh, _ = run_mesh()
        # one receiver per core, shared across both measured pairs
        assert len(mesh.core_receivers) == 4
        # each core receiver demuxes two source-ToR streams
        for receiver in mesh.core_receivers.values():
            assert len(receiver.demux.sender_ids()) == 2

    def test_per_dst_receivers(self):
        _, mesh, _ = run_mesh()
        assert set(mesh.dst_receivers) == {(1, 0), (2, 1)}

    def test_senders_per_src_uplink(self):
        _, mesh, _ = run_mesh()
        assert set(mesh.tor_senders) == {((0, 0), 0), ((0, 0), 1),
                                         ((0, 1), 0), ((0, 1), 1)}

    def test_cannot_wire_twice(self):
        ft, mesh, _ = run_mesh()
        with pytest.raises(RuntimeError):
            mesh.run([pair_trace(ft, (0, 0), (1, 0), n_packets=100)])


class TestMeshMeasurement:
    def test_both_pairs_measured_accurately(self):
        _, _, result = run_mesh()
        for src, dst in PAIRS:
            view = result.pair(src, dst)
            j2 = flow_mean_errors(view.segment2_estimated(), view.segment2_true())
            assert len(j2.errors) > 30, (src, dst)
            assert Ecdf(j2.errors).median < 0.5, (src, dst)

    def test_pair_views_are_disjoint(self):
        ft, _, result = run_mesh()
        a = result.pair(*PAIRS[0])
        b = result.pair(*PAIRS[1])
        keys_a = set(a.segment2_estimated().keys())
        keys_b = set(b.segment2_estimated().keys())
        assert keys_a and keys_b
        assert not keys_a & keys_b

    def test_unmeasured_pair_rejected(self):
        _, _, result = run_mesh()
        with pytest.raises(KeyError):
            result.pair((0, 0), (3, 0))

    def test_cross_pair_interference_measured_as_truth(self):
        """Pair B's traffic is cross traffic for pair A's segments; it
        inflates A's true delays but never appears in A's flow tables."""
        _, _, result = run_mesh()
        a = result.pair(*PAIRS[0])
        src_prefix_b = build_fattree().tor_prefix(0, 1)
        for key, _ in a.segment2_estimated().items():
            assert key[0] not in src_prefix_b

    def test_end_to_end_per_pair(self):
        _, _, result = run_mesh()
        for src, dst in PAIRS:
            rows = result.pair(src, dst).end_to_end()
            assert len(rows) > 20
            errors = sorted(abs(e - t) / t for _, e, t in rows if t > 0)
            assert errors[len(errors) // 2] < 0.5
