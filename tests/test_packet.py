"""Tests for the packet model and flow helpers."""

from repro.net.addressing import ip_to_int
from repro.net.flow import FlowKey, count_flows, group_by_flow
from repro.net.packet import Packet, PacketKind


def make(src="10.0.0.1", dst="10.0.0.2", **kw):
    return Packet(src=ip_to_int(src), dst=ip_to_int(dst), **kw)


class TestPacket:
    def test_defaults(self):
        p = make()
        assert p.kind == PacketKind.REGULAR
        assert p.is_regular and not p.is_reference and not p.is_cross
        assert p.tap_time is None
        assert not p.dropped
        assert p.hops == 0

    def test_flow_key_fields(self):
        p = make(sport=1234, dport=80, proto=6)
        assert p.flow_key == (p.src, p.dst, 1234, 80, 6)

    def test_clone_copies_header_resets_bookkeeping(self):
        p = make(sport=5, dport=6, size=100, ts=1.5)
        p.tap_time = 1.0
        p.dropped = True
        p.hops = 3
        q = p.clone()
        assert q.flow_key == p.flow_key
        assert q.size == 100 and q.ts == 1.5
        assert q.tap_time is None and not q.dropped and q.hops == 0

    def test_clone_preserves_reference_fields(self):
        p = make(kind=PacketKind.REFERENCE, sender_id=42, ref_timestamp=0.125)
        q = p.clone()
        assert q.is_reference and q.sender_id == 42 and q.ref_timestamp == 0.125

    def test_repr_mentions_addresses(self):
        assert "10.0.0.1" in repr(make())


class TestFlowHelpers:
    def test_flowkey_of_and_reversed(self):
        p = make(sport=10, dport=20)
        key = FlowKey.of(p)
        assert key == FlowKey(p.src, p.dst, 10, 20, 6)
        rev = key.reversed()
        assert rev.src == key.dst and rev.sport == key.dport

    def test_group_by_flow_preserves_order(self):
        a1, a2 = make(sport=1), make(sport=1)
        b = make(sport=2)
        groups = group_by_flow([a1, b, a2])
        assert groups[a1.flow_key] == [a1, a2]
        assert groups[b.flow_key] == [b]

    def test_count_flows(self):
        packets = [make(sport=s) for s in (1, 1, 2, 3, 3, 3)]
        assert count_flows(packets) == 3
