"""Tests for ``repro.obs`` — the zero-perturbation observability layer.

Four concerns, matching ISSUE 9's acceptance criteria:

* **byte-identity** — results (and for the CLI paths, stdout) must be
  byte-identical with obs on vs off, on the serial, process-pool, and
  distributed backends.  Telemetry that changes an answer is a bug by
  definition here.
* **deterministic merge** — worker buffers folded in any arrival order
  must merge into one total order by ``(process, seq)``.
* **artifact round-trip** — a written ``run-*.json`` must validate
  against the committed schema, and the stdlib validator must actually
  reject malformed documents.
* **overhead** — the disabled fast path is one attribute check; this
  suite gates its per-call cost and checks a small sweep is not
  measurably perturbed.  (The CI perf-smoke lane owns the ISSUE's
  ``<= 2%`` whole-sweep bound; a unit test asserts looser bounds that
  survive noisy shared boxes.)
"""

import json
import os
import pickle
import time

import pytest

from repro import obs
from repro.obs._state import _STATE
from repro.experiments.config import ExperimentConfig
from repro.runner import JobSpec, ParallelRunner, ResultCache

_OBS_ENV = ("REPRO_OBS", "REPRO_OBS_VERBOSE", "REPRO_OBS_PROCESS")


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with obs fully off and buffers empty."""
    saved = {k: os.environ.get(k) for k in _OBS_ENV}

    def scrub():
        obs.disable()
        obs.set_verbose(False)
        _STATE.process_override = ""
        obs.reset_spans()
        obs.reset_metrics()
        obs.reset_notes()
        obs.reset_foreign()
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    scrub()
    yield
    scrub()


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(scale=0.01, seed=7)


@pytest.fixture(scope="module")
def jobs(cfg):
    """Two independent fig4 conditions (the determinism suite's pair)."""
    return [
        JobSpec.from_config(cfg, "adaptive", "random", 0.67),
        JobSpec.from_config(cfg, "static", "random", 0.67),
    ]


@pytest.fixture(scope="module")
def serial_blobs(jobs):
    """Reference answers, computed once with obs off."""
    return [pickle.dumps(s) for s in ParallelRunner(jobs=1).run(jobs)]


# ----------------------------------------------------------------------
# spans


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        assert not obs.enabled()
        assert obs.span("a") is obs.span("b")
        with obs.span("a"):
            pass
        assert obs.spans_snapshot() == []

    def test_enabled_span_records_name_seq_thread(self):
        obs.enable()
        with obs.span("stage.one"):
            pass
        with obs.span("stage.two"):
            pass
        recs = obs.spans_snapshot()
        assert [r["name"] for r in recs] == ["stage.one", "stage.two"]
        assert [r["seq"] for r in recs] == [1, 2]
        for r in recs:
            assert r["end"] >= r["start"]
            assert isinstance(r["thread"], int)

    def test_exception_inside_span_still_records_and_propagates(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("kept")
        assert [r["name"] for r in obs.spans_snapshot()] == ["boom"]

    def test_drain_keeps_seq_monotonic_across_batches(self):
        obs.enable()
        with obs.span("a"):
            pass
        first = obs.drain_spans()
        with obs.span("b"):
            pass
        second = obs.drain_spans()
        assert [r["seq"] for r in first + second] == [1, 2]
        assert obs.spans_snapshot() == []


# ----------------------------------------------------------------------
# metrics


class TestMetrics:
    def test_disabled_calls_record_nothing(self):
        obs.count("cache.hit")
        obs.gauge("depth", 3.0)
        obs.observe("latency", 0.5)
        obs.taken("pipeline.run_batch")
        snap = obs.registry_snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_counters_gauges_histograms(self):
        obs.enable()
        obs.count("cache.hit")
        obs.count("cache.hit", 2)
        obs.gauge("depth", 3.0)
        obs.gauge("depth", 1.0)
        obs.observe("latency", 0.5)
        obs.observe("latency", 1.5)
        snap = obs.registry_snapshot()
        assert snap["counters"]["cache.hit"] == 3
        assert snap["gauges"]["depth"] == 1.0  # last write wins
        hist = snap["histograms"]["latency"]
        assert (hist["count"], hist["total"]) == (2, 2.0)
        assert (hist["min"], hist["max"]) == (0.5, 1.5)

    def test_taken_and_fallback_fold_labels_into_keys(self):
        obs.enable()
        obs.taken("pipeline.run_batch")
        obs.fallback("chain.run_batch", "regular-not-columnar")
        snap = obs.registry_snapshot()
        assert snap["counters"]["batch.fastpath[pipeline.run_batch]"] == 1
        key = "batch.fallback[chain.run_batch:regular-not-columnar]"
        assert snap["counters"][key] == 1

    def test_verbose_fallback_notes_stderr_once_per_site(self, capsys):
        obs.set_verbose(True)  # verbose alone: note, but no counter
        obs.fallback("fatpath", "until-unsupported")
        obs.fallback("fatpath", "until-unsupported")
        obs.fallback("fatpath", "other-reason")
        captured = capsys.readouterr()
        assert captured.out == ""  # stdout is sacred
        assert captured.err.count("until-unsupported") == 1
        assert captured.err.count("other-reason") == 1
        assert obs.registry_snapshot()["counters"] == {}

    def test_merge_sums_counters_and_widens_histograms(self):
        snap_a = {"counters": {"c": 1}, "gauges": {"g": 1.0},
                  "histograms": {"h": {"count": 1, "total": 2.0,
                                       "min": 2.0, "max": 2.0}}}
        snap_b = {"counters": {"c": 4}, "gauges": {"g": 9.0},
                  "histograms": {"h": {"count": 1, "total": 0.5,
                                       "min": 0.5, "max": 0.5}}}
        reg = obs.MetricsRegistry()
        reg.merge(snap_a)
        reg.merge(snap_b, prefix="broker.")
        reg.merge(snap_b)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 5, "broker.c": 4}
        assert snap["gauges"]["g"] == 9.0
        hist = snap["histograms"]["h"]
        assert (hist["count"], hist["total"]) == (2, 2.5)
        assert (hist["min"], hist["max"]) == (0.5, 2.0)


# ----------------------------------------------------------------------
# worker-buffer merge


def _payload(process, names, start_seq=1):
    spans = [
        {"name": n, "start": float(i), "end": float(i) + 0.5,
         "thread": 1, "seq": start_seq + i}
        for i, n in enumerate(names)
    ]
    return {"process": process, "spans": spans,
            "metrics": {"counters": {"cache.hit": 1}, "gauges": {},
                        "histograms": {}}}


class TestWorkerBufferMerge:
    def test_merge_orders_by_process_then_seq(self):
        obs.enable(process="driver")
        # fold arrival order deliberately scrambled vs (process, seq)
        obs.fold_payload(_payload("worker-2", ["w2.b"], start_seq=7))
        obs.fold_payload(_payload("worker-1", ["w1.a", "w1.b"]))
        obs.fold_payload(_payload("worker-2", ["w2.a"], start_seq=3))
        with obs.span("driver.span"):
            pass
        merged = obs.merged_spans()
        keys = [(r["process"], r["seq"]) for r in merged]
        assert keys == sorted(keys)
        assert [r["name"] for r in merged] == [
            "driver.span", "w1.a", "w1.b", "w2.a", "w2.b"]

    def test_merge_is_arrival_order_independent(self):
        payloads = [_payload(f"worker-{i}", [f"w{i}.a", f"w{i}.b"])
                    for i in range(3)]
        obs.enable(process="driver")
        for p in payloads:
            obs.fold_payload(p)
        forward = [(r["process"], r["seq"]) for r in obs.merged_spans()]
        obs.reset_foreign()
        for p in reversed(payloads):
            obs.fold_payload(p)
        assert [(r["process"], r["seq"]) for r in obs.merged_spans()] == forward

    def test_fold_ignores_garbage(self):
        obs.enable()
        for junk in (None, [], "x", {"spans": []}):  # no "process" key
            obs.fold_payload(junk)
        assert obs.merged_spans() == []

    def test_folded_metrics_sum_into_merged_view(self):
        obs.enable()
        obs.count("cache.hit", 2)
        obs.fold_payload(_payload("worker-1", []))
        obs.fold_payload(_payload("worker-2", []))
        doc = obs.build_artifact()
        assert doc["counters"]["cache.hit"] == 4

    def test_drain_payload_roundtrip(self):
        obs.enable(process="worker-9")
        with obs.span("worker.chunk"):
            pass
        obs.count("cache.miss")
        payload = obs.drain_payload()
        assert payload["process"] == "worker-9"
        assert [r["name"] for r in payload["spans"]] == ["worker.chunk"]
        assert payload["metrics"]["counters"]["cache.miss"] == 1
        # draining emptied the local buffers
        assert obs.spans_snapshot() == []
        assert obs.registry_snapshot()["counters"] == {}


# ----------------------------------------------------------------------
# artifact round-trip


class TestArtifact:
    def test_write_validate_roundtrip(self, tmp_path):
        obs.enable(process="driver")
        with obs.span("runner.sweep"):
            with obs.span("runner.job"):
                pass
        obs.count("cache.hit")
        obs.observe("distrib.heartbeat_interarrival", 0.5)
        obs.fold_payload(_payload("worker-1", ["worker.chunk"]))
        path = obs.write_artifact(meta={"command": "test"},
                                  out_dir=str(tmp_path), chrome_trace=True)
        doc = json.loads((tmp_path / os.path.basename(path)).read_text())
        assert obs.validate_artifact(doc) == []
        assert doc["schema"] == obs.SCHEMA_ID
        assert doc["meta"]["command"] == "test"
        assert {r["process"] for r in doc["spans"]} == {"driver", "worker-1"}
        trace_path = path[: -len(".json")] + ".trace.json"
        events = json.loads(open(trace_path).read())["traceEvents"]
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"driver", "worker-1"}
        assert sum(1 for e in events if e["ph"] == "X") == 3

    def test_validator_rejects_malformed_docs(self):
        schema = obs.load_schema()
        good = obs.build_artifact()
        assert obs.validate_artifact(good, schema) == []
        for mutate in (
            lambda d: d.pop("spans"),
            lambda d: d.__setitem__("schema", "wrong/v0"),
            lambda d: d.__setitem__("counters", [1, 2]),
            lambda d: d.__setitem__("spans", [{"name": "x"}]),
            lambda d: d.__setitem__("gauges", {"g": "high"}),
        ):
            doc = json.loads(json.dumps(obs.build_artifact()))
            mutate(doc)
            assert obs.validate_artifact(doc, schema), mutate

    def test_span_summary_totals(self):
        obs.enable()
        spans = [
            {"name": "a", "start": 0.0, "end": 1.0, "thread": 1, "seq": 1},
            {"name": "a", "start": 2.0, "end": 2.5, "thread": 1, "seq": 2},
            {"name": "b", "start": 0.0, "end": 0.25, "thread": 1, "seq": 3},
        ]
        summary = obs.span_summary(spans)
        assert summary["a"] == {"count": 2, "total_s": 1.5, "max_s": 1.0}
        assert summary["b"]["count"] == 1
        assert list(summary) == sorted(summary)


# ----------------------------------------------------------------------
# byte-identity: obs on vs off, per backend


class TestByteIdentity:
    def test_serial_backend(self, jobs, serial_blobs):
        obs.enable(process="driver")
        got = [pickle.dumps(s) for s in ParallelRunner(jobs=1).run(jobs)]
        assert got == serial_blobs
        # and the run actually recorded something
        assert obs.registry_snapshot()["counters"]["runner.jobs"] == 2
        assert "runner.sweep" in {r["name"] for r in obs.merged_spans()}

    def test_process_backend(self, jobs, serial_blobs):
        obs.enable(process="driver")
        got = [pickle.dumps(s) for s in ParallelRunner(jobs=2).run(jobs)]
        assert got == serial_blobs
        # pool workers shipped their buffers back over the result channel
        procs = {r["process"] for r in obs.merged_spans()}
        assert any(p != "driver" for p in procs)

    def test_distributed_backend(self, jobs, serial_blobs):
        from repro.distrib import DistributedRunner

        obs.enable(process="driver")
        runner = DistributedRunner(workers=2, heartbeat_interval=0.5,
                                   poll_timeout=300.0)
        try:
            got = [pickle.dumps(s) for s in runner.run(jobs)]
        finally:
            runner.close()
        assert got == serial_blobs
        procs = {r["process"] for r in obs.merged_spans()}
        assert any(p.startswith("worker-") for p in procs)
        # the end-of-sweep broker stats query folded in prefixed counters
        counters = obs.build_artifact()["counters"]
        assert any(k.startswith("broker.distrib.") for k in counters)

    def test_cached_rerun_identical_and_counted(self, jobs, serial_blobs,
                                                tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        obs.enable()
        runner = ParallelRunner(jobs=1, cache=cache)
        cold = [pickle.dumps(s) for s in runner.run(jobs)]
        warm = [pickle.dumps(s) for s in runner.run(jobs)]
        assert cold == warm == serial_blobs
        counters = obs.registry_snapshot()["counters"]
        assert counters["cache.miss"] == 2
        assert counters["cache.put"] == 2
        assert counters["cache.hit"] == 2


# ----------------------------------------------------------------------
# overhead


class TestOverhead:
    N = 200_000

    def _loop(self, body):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            body()
            best = min(best, time.perf_counter() - t0)
        return best

    def test_disabled_span_is_cheap(self):
        """Disabled span() must stay a one-attribute-check no-op.

        The gate is deliberately loose (2 µs/call, ~100x the observed
        cost) so it only trips on a structural regression — e.g. span()
        allocating or taking a lock while disabled — never on machine
        noise.  The ISSUE's <= 2% whole-sweep bound lives in the CI
        perf-smoke lane where both sides run the real workload.
        """
        assert not obs.enabled()
        span = obs.span

        def body():
            for _ in range(self.N):
                with span("hot"):
                    pass

        per_call = self._loop(body) / self.N
        assert per_call < 2e-6, f"{per_call * 1e9:.0f} ns per disabled span"

    def test_disabled_counter_is_cheap(self):
        assert not obs.enabled()
        count = obs.count

        def body():
            for _ in range(self.N):
                count("hot")

        per_call = self._loop(body) / self.N
        assert per_call < 2e-6, f"{per_call * 1e9:.0f} ns per disabled count"
        assert obs.registry_snapshot()["counters"] == {}

    def test_enabled_sweep_overhead_bounded(self, jobs, serial_blobs):
        """Obs *on* must not meaningfully slow a small sweep.

        Best-of-3 each way; the 1.5x bound is far above the intended
        cost (spans per job, a handful of counters) but catches a
        per-packet instrumentation mistake, which would show up as an
        integer multiple.
        """
        def sweep():
            return [pickle.dumps(s) for s in ParallelRunner(jobs=1).run(jobs)]

        off = self._loop(sweep)
        obs.enable()
        on_time = self._loop(sweep)
        assert sweep() == serial_blobs
        assert on_time <= off * 1.5 + 0.05, (on_time, off)
