"""Batch/object equivalence for the multihop chain and fat-tree drivers.

PR 3 pinned the two-switch pipeline's columnar fast path to the per-object
reference implementation bit for bit; this suite does the same for the
paths this PR vectorizes beyond it:

* :meth:`repro.sim.chain.SwitchChain.run_batch` — multihop segment chains
  with per-hop cross traffic and an inlined first-hop sender scan;
* :class:`repro.sim.fatpath.FatTreeFastPath` — the layered columnar
  replacement for the event calendar behind ``RlirMesh(batch=True)`` and
  ``RlirDeployment(batch=True)``, including its exact reconstruction of
  the engine's ``(time, insertion seq)`` tie-break from event provenance;
* the extension-study jobs that thread the ``batch`` knob through the
  runner (:mod:`repro.experiments.extension_jobs`).

Every comparison is exact equality on floats — same float-op order, same
dict insertion order, same observation-log bytes — mirroring
``tests/test_batch_equivalence.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.demux import SingleSenderDemux
from repro.core.injection import AdaptiveInjection, StaticInjection
from repro.core.mesh import RlirMesh
from repro.core.obslog import make_observation_log
from repro.core.receiver import RliReceiver
from repro.core.rlir import RlirDeployment
from repro.core.sender import RefTemplate, RliSender
from repro.experiments.config import ExperimentConfig, derive_seed
from repro.net.addressing import Prefix, ip_to_int
from repro.sim.chain import ChainConfig, SwitchChain
from repro.sim.clock import DriftingClock
from repro.sim.fatpath import FastPathUnavailable, FatTreeFastPath
from repro.sim.topology import FatTree, LinkParams
from repro.traffic.batch import PacketBatch
from repro.traffic.crosstraffic import BurstyModel, UniformModel
from repro.traffic.synthetic import TraceConfig, generate_fattree_trace, generate_trace

REGULAR_PREFIX = Prefix.parse("10.1.0.0/16")


def queue_state(queue):
    """Every observable scalar of a queue, for bitwise comparison."""
    s = queue.stats
    return (s.arrivals, s.accepted, s.dropped, s.bytes_in, s.bytes_accepted,
            s.bytes_dropped, s.total_delay, s.max_delay, s.last_departure,
            queue._free_at)


def flow_table_state(table):
    """(key, full accumulator state) rows in dict insertion order."""
    return [(k, (v.count, v.mean, v._m2, v.min, v.max)) for k, v in table.items()]


def receiver_state(rx):
    return {
        "counts": (rx.regulars_measured, rx.regulars_ignored,
                   rx.references_accepted, rx.references_ignored,
                   rx.missing_tap, rx.unestimated),
        "true": flow_table_state(rx.flow_true),
        "estimated": flow_table_state(rx.flow_estimated),
    }


def sender_state(tx):
    u = tx.utilization
    return (tx.refs_injected, tx.regulars_seen, dict(tx._counters),
            u._seen_any, u._window_start, u._window_bytes, u._estimate)


# ----------------------------------------------------------------------
# multihop chain


def build_traces(seed, n_reg, n_cross, duration):
    reg = generate_trace(
        TraceConfig(duration=duration, n_packets=n_reg, mean_flow_pkts=8.0),
        seed=seed, name="regular")
    cross = generate_trace(
        TraceConfig(duration=duration, n_packets=n_cross, mean_flow_pkts=8.0,
                    src_base="10.9.0.0", dst_base="10.10.0.0"),
        seed=seed + 1, name="cross")
    return reg, cross


def make_sender(rate_bps, scheme, classify=None):
    policy = AdaptiveInjection(5, 60) if scheme == "adaptive" else StaticInjection(25)
    template = RefTemplate(src=ip_to_int("10.1.0.0") + 1,
                           dst=ip_to_int("10.2.255.254"))
    return RliSender(sender_id=1, link_rate_bps=rate_bps, policy=policy,
                     templates={0: template}, classify=classify)


def drive_chain(batch, reg, cross, model, n_hops, rate, buffer_bytes,
                scheme, log=None, classify=None):
    """One chain run on either driver; returns (result, receiver, sender)."""
    chain = SwitchChain(ChainConfig(
        n_hops=n_hops, rate_bps=rate, buffer_bytes=buffer_bytes,
        proc_delay=1e-6, batch=batch))
    sender = make_sender(rate, scheme, classify=classify) if scheme else None
    receiver = RliReceiver(
        demux=SingleSenderDemux(1, regular_prefixes=[REGULAR_PREFIX]),
        observation_log=log)
    cross_per_hop = {
        hop: (UniformModel(model.prob, seed=model.seed + hop).arrivals_batch(cross)
              if batch else
              UniformModel(model.prob, seed=model.seed + hop).arrivals(cross))
        for hop in range(n_hops)
    }
    result = chain.run(reg if batch else reg.clone_packets(), cross_per_hop,
                       sender=sender, receiver=receiver)
    receiver.finalize()
    return result, receiver, sender


class TestChainProperty:
    @given(
        seed=st.integers(0, 2**31),
        n_reg=st.integers(300, 900),
        n_hops=st.sampled_from([1, 2, 3, 5]),
        headroom=st.floats(0.3, 0.9),
        buffer_kb=st.sampled_from([2, 8, 64, None]),
        cross_prob=st.sampled_from([0.0, 0.4, 0.8]),
        scheme=st.sampled_from([None, "static", "adaptive"]),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_chains_bitwise_identical(self, seed, n_reg, n_hops,
                                             headroom, buffer_kb, cross_prob,
                                             scheme):
        duration = 0.25
        reg, cross = build_traces(seed, n_reg, 2 * n_reg, duration)
        rate = reg.total_bytes * 8.0 / (duration * headroom)
        buffer_bytes = buffer_kb * 1024 if buffer_kb else None
        model = UniformModel(cross_prob, seed=seed)

        res_o, rx_o, tx_o = drive_chain(False, reg, cross, model, n_hops,
                                        rate, buffer_bytes, scheme)
        res_b, rx_b, tx_b = drive_chain(True, reg, cross, model, n_hops,
                                        rate, buffer_bytes, scheme)
        assert len(res_o.queues) == len(res_b.queues) == n_hops
        for q_o, q_b in zip(res_o.queues, res_b.queues):
            assert queue_state(q_o) == queue_state(q_b)
        assert res_o.regular_in == res_b.regular_in
        assert res_o.regular_out == res_b.regular_out
        assert res_o.refs_injected == res_b.refs_injected
        assert res_o.duration == res_b.duration
        assert receiver_state(rx_o) == receiver_state(rx_b)
        if scheme:
            assert sender_state(tx_o) == sender_state(tx_b)

    @pytest.mark.parametrize("log_mode", ["tuple", "array"])
    def test_observation_log_identical(self, log_mode):
        reg, cross = build_traces(11, 600, 1200, 0.25)
        rate = reg.total_bytes * 8.0 / (0.25 * 0.5)
        model = UniformModel(0.5, seed=2)
        logs = []
        for batch in (False, True):
            log = make_observation_log(log_mode)
            drive_chain(batch, reg, cross, model, 3, rate, 32 * 1024,
                        "adaptive", log=log)
            logs.append(log)
        assert list(logs[0]) == list(logs[1])

    def test_custom_classifier_sender_falls_back_identically(self):
        """A packet-inspecting classifier keeps exact numbers through the
        transparent per-object fallback inside run_batch."""
        reg, cross = build_traces(3, 400, 800, 0.25)
        rate = reg.total_bytes * 8.0 / (0.25 * 0.6)
        model = UniformModel(0.3, seed=5)
        classify = lambda packet: 0 if packet.size > 300 else None  # noqa: E731
        res_o, rx_o, tx_o = drive_chain(False, reg, cross, model, 2, rate,
                                        64 * 1024, "static", classify=classify)
        res_b, rx_b, tx_b = drive_chain(True, reg, cross, model, 2, rate,
                                        64 * 1024, "static", classify=classify)
        assert not tx_b.batch_capable
        for q_o, q_b in zip(res_o.queues, res_b.queues):
            assert queue_state(q_o) == queue_state(q_b)
        assert receiver_state(rx_o) == receiver_state(rx_b)
        assert sender_state(tx_o) == sender_state(tx_b)

    def test_materialized_cross_dispatches_to_the_object_path(self):
        """ChainConfig(batch=True) with per-object cross pairs cannot be
        coerced; run() silently keeps the reference path, same numbers."""
        reg, cross = build_traces(7, 300, 600, 0.25)
        rate = reg.total_bytes * 8.0 / (0.25 * 0.6)
        model = UniformModel(0.4, seed=9)
        results = []
        for batch in (False, True):
            chain = SwitchChain(ChainConfig(n_hops=2, rate_bps=rate,
                                            buffer_bytes=64 * 1024,
                                            proc_delay=1e-6, batch=batch))
            receiver = RliReceiver(
                demux=SingleSenderDemux(1, regular_prefixes=[REGULAR_PREFIX]))
            cross_per_hop = {hop: model.arrivals(cross) for hop in range(2)}
            chain.run(reg.clone_packets(), cross_per_hop, receiver=receiver)
            receiver.finalize()
            results.append(receiver_state(receiver))
        assert results[0] == results[1]


# ----------------------------------------------------------------------
# fat-tree: mesh and RLIR deployments


PAIRS = (((0, 0), (1, 0)), ((0, 1), (2, 1)), ((3, 0), (1, 1)))


def mesh_traces(ft, n, seed, pairs=PAIRS):
    traces = []
    for i, (src, dst) in enumerate(pairs):
        host_pairs = [(ft.host_address(*src, h), ft.host_address(*dst, g))
                      for h in range(2) for g in range(2)]
        traces.append(generate_fattree_trace(
            TraceConfig(duration=1.0, n_packets=n, mean_flow_pkts=12.0),
            host_pairs, seed=derive_seed(seed, "mesh-trace", i),
            name=f"{src}->{dst}"))
    return traces


def run_mesh(batch, n=2500, seed=0, buffer_bytes=256 * 1024, rate=40e6):
    ft = FatTree(4, LinkParams(rate_bps=rate, buffer_bytes=buffer_bytes,
                               proc_delay=1e-6, prop_delay=0.5e-6))
    mesh = RlirMesh(ft, list(PAIRS), policy_factory=lambda: StaticInjection(20),
                    batch=batch)
    mesh.run(mesh_traces(ft, n, seed))
    return ft, mesh


def assert_mesh_equal(m_o, m_b, ft_o, ft_b):
    for sw_o, sw_b in zip(ft_o.switches, ft_b.switches):
        for p_o, p_b in zip(sw_o.ports, sw_b.ports):
            assert queue_state(p_o.queue) == queue_state(p_b.queue), sw_o.name
    for key in m_o.core_receivers:
        assert receiver_state(m_o.core_receivers[key]) == \
            receiver_state(m_b.core_receivers[key]), key
    for key in m_o.dst_receivers:
        assert receiver_state(m_o.dst_receivers[key]) == \
            receiver_state(m_b.dst_receivers[key]), key
    for key in m_o.tor_senders:
        assert sender_state(m_o.tor_senders[key]) == \
            sender_state(m_b.tor_senders[key]), key
    for key in m_o.core_senders:
        assert sender_state(m_o.core_senders[key]) == \
            sender_state(m_b.core_senders[key]), key


class TestMeshEquivalence:
    @pytest.mark.parametrize("kw", [
        {},
        {"seed": 3},
        {"buffer_bytes": 6000, "rate": 20e6},  # drop-heavy tiny buffers
    ], ids=["base", "seed3", "tiny-buffer"])
    def test_mesh_bitwise_identical(self, kw):
        ft_o, m_o = run_mesh(False, **kw)
        ft_b, m_b = run_mesh(True, **kw)
        assert_mesh_equal(m_o, m_b, ft_o, ft_b)
        assert sum(s.refs_injected for s in m_b.tor_senders.values()) > 0

    def test_mesh_fast_path_actually_runs(self, monkeypatch):
        """The batch run must not silently fall back to the calendar."""
        from repro.sim.engine import Engine

        def boom(self, until=None):  # pragma: no cover - failure path
            raise AssertionError("fell back to the event engine")

        monkeypatch.setattr(Engine, "run", boom)
        run_mesh(True)

    def test_coincident_injections_use_trace_order(self, monkeypatch):
        """Two traces injected with bit-equal timestamps and sizes collide
        at shared queues with identical provenance everywhere; the driver
        must reproduce the engine's injection-order tie-break (and not
        fall back — the calendar is disabled under the batch run)."""
        from repro.sim.engine import Engine

        def traces(ft):
            t1 = generate_fattree_trace(
                TraceConfig(duration=1.0, n_packets=400, mean_flow_pkts=6.0),
                [(ft.host_address(0, 0, h), ft.host_address(1, 0, g))
                 for h in range(2) for g in range(2)], seed=5, name="a")
            t2 = generate_fattree_trace(
                TraceConfig(duration=1.0, n_packets=400, mean_flow_pkts=6.0),
                [(ft.host_address(0, 1, h), ft.host_address(1, 0, g))
                 for h in range(2) for g in range(2)], seed=6, name="b")
            # same instants, same sizes, different flows/edges: idle queues
            # propagate bit-equal times and provenance level for level
            m = min(len(t1.batch), len(t2.batch))
            rows = np.arange(m)
            b1 = t1.batch.take(rows)
            b2 = t2.batch.take(rows).replace(ts=b1.ts.copy(),
                                             size=b1.size.copy())
            return [b1, b2]

        states = []
        for batch in (False, True):
            ft = FatTree(4, LinkParams(rate_bps=1e9, buffer_bytes=256 * 1024,
                                       proc_delay=1e-6, prop_delay=0.5e-6))
            dep = RlirDeployment(ft, src=(0, 0), dst=(1, 0),
                                 policy_factory=lambda: StaticInjection(30),
                                 demux_method="reverse-ecmp", batch=batch)
            if batch:
                monkeypatch.setattr(Engine, "run", _engine_disabled)
            dep.run(traces(ft))
            states.append((receiver_state(dep.dst_receiver),
                           [receiver_state(rx)
                            for rx in dep.core_receivers.values()]))
        assert states[0] == states[1]


def _engine_disabled(self, until=None):  # pragma: no cover - failure path
    raise AssertionError("fell back to the event engine")


class TestRlirEquivalence:
    def run_rlir(self, batch, n=2500, seed=0, demux="reverse-ecmp",
                 record=False, clock_factory=None, until=None):
        ft = FatTree(4, LinkParams(rate_bps=100e6, buffer_bytes=256 * 1024))
        measured = [(ft.host_address(0, 0, h), ft.host_address(1, 0, g))
                    for h in range(2) for g in range(2)]
        incast = [(ft.host_address(p, e, h), ft.host_address(1, 0, g))
                  for p in (2, 3) for e in range(2) for h in range(2)
                  for g in range(2)]
        t1 = generate_fattree_trace(TraceConfig(duration=1.0, n_packets=n),
                                    measured, seed=derive_seed(seed, "m"))
        t2 = generate_fattree_trace(TraceConfig(duration=1.0, n_packets=3 * n),
                                    incast, seed=derive_seed(seed, "i"))
        dep = RlirDeployment(ft, src=(0, 0), dst=(1, 0),
                             policy_factory=lambda: StaticInjection(50),
                             demux_method=demux,
                             record_observations="array" if record else False,
                             clock_factory=clock_factory,
                             batch=batch)
        dep.run([t1, t2], until=until)
        return ft, dep

    def assert_rlir_equal(self, pair_o, pair_b, record=False):
        (ft_o, d_o), (ft_b, d_b) = pair_o, pair_b
        for sw_o, sw_b in zip(ft_o.switches, ft_b.switches):
            for p_o, p_b in zip(sw_o.ports, sw_b.ports):
                assert queue_state(p_o.queue) == queue_state(p_b.queue)
        for key in d_o.core_receivers:
            assert receiver_state(d_o.core_receivers[key]) == \
                receiver_state(d_b.core_receivers[key]), key
        assert receiver_state(d_o.dst_receiver) == receiver_state(d_b.dst_receiver)
        if record:
            for (n1, l1), (n2, l2) in zip(d_o.observation_logs(),
                                          d_b.observation_logs()):
                assert n1 == n2 and list(l1) == list(l2), n1
        for key in d_o.tor_senders:
            assert sender_state(d_o.tor_senders[key]) == \
                sender_state(d_b.tor_senders[key]), key
        for key in d_o.core_senders:
            assert sender_state(d_o.core_senders[key]) == \
                sender_state(d_b.core_senders[key]), key

    def test_reverse_ecmp_bitwise_identical(self):
        self.assert_rlir_equal(self.run_rlir(False), self.run_rlir(True))

    def test_recorded_logs_bitwise_identical(self):
        self.assert_rlir_equal(self.run_rlir(False, record=True),
                               self.run_rlir(True, record=True), record=True)

    def test_marking_demux_falls_back_identically(self):
        """The marking classifier reads per-packet ToS state; the batch
        run must fall back to the engine with identical output."""
        self.assert_rlir_equal(self.run_rlir(False, demux="marking"),
                               self.run_rlir(True, demux="marking"))

    def test_jittered_clock_falls_back_identically(self):
        clock = lambda: DriftingClock(drift_ppm=3.0, jitter_std=1e-7, seed=4)  # noqa: E731
        self.assert_rlir_equal(
            self.run_rlir(False, clock_factory=clock),
            self.run_rlir(True, clock_factory=clock))

    def test_until_bound_falls_back_identically(self):
        self.assert_rlir_equal(self.run_rlir(False, until=0.5),
                               self.run_rlir(True, until=0.5))


# ----------------------------------------------------------------------
# the fast-path driver refuses what it cannot reproduce


class TestFastPathPreflight:
    def test_prior_queue_traffic_is_rejected(self):
        ft = FatTree(4, LinkParams(rate_bps=1e9, buffer_bytes=256 * 1024))
        mesh = RlirMesh(ft, [((0, 0), (1, 0))], batch=True)
        from repro.sim.engine import Engine
        mesh.wire(Engine())
        from repro.net.packet import Packet
        edge = ft.edges[0][0]
        uplink = edge.ports[ft.port_toward(edge, ft.aggs[0][0])]
        uplink.queue.offer(Packet(src=1, dst=2, size=100, ts=0.0), 0.0)
        fp = FatTreeFastPath(ft, mesh._sender_taps, mesh._receiver_taps)
        with pytest.raises(FastPathUnavailable):
            fp.run([mesh_traces(ft, 50, 0, pairs=[((0, 0), (1, 0))])[0].batch])

    def test_out_of_fabric_trace_is_rejected(self):
        ft = FatTree(4, LinkParams(rate_bps=1e9, buffer_bytes=256 * 1024))
        mesh = RlirMesh(ft, [((0, 0), (1, 0))], batch=True)
        from repro.sim.engine import Engine
        mesh.wire(Engine())
        trace = generate_trace(TraceConfig(duration=0.1, n_packets=10),
                               seed=1)  # 10.1/10.2 host blocks, not fat-tree
        fp = FatTreeFastPath(ft, mesh._sender_taps, mesh._receiver_taps)
        with pytest.raises(FastPathUnavailable):
            fp.run([trace.batch])


# ----------------------------------------------------------------------
# extension jobs: the batch knob composes with sharding and caching


class TestJobEquivalence:
    def test_multihop_shard_job_batch_identical(self):
        from repro.experiments.extension_jobs import MultihopShardJob
        from repro.runner.spec import config_items

        frozen = config_items(ExperimentConfig(scale=0.01, seed=7))
        outs = []
        for batch in (False, True):
            shards = [
                MultihopShardJob(frozen, 3, 0.8, 0, shard, 2, batch).run()
                for shard in range(2)
            ]
            outs.append([
                [(name, flow_table_state(tables.estimated),
                  flow_table_state(tables.true))
                 for name, tables in sharded.segments]
                for sharded in shards
            ])
        assert outs[0] == outs[1]

    def test_mesh_job_batch_identical(self):
        from repro.experiments.extension_jobs import MeshJob

        pairs = (((0, 0), (1, 0)), ((2, 1), (3, 0)))
        rows_o = MeshJob(pairs, 2000, 0, False).run()
        rows_b = MeshJob(pairs, 2000, 0, True).run()
        assert rows_o == rows_b

    def test_batch_is_part_of_every_cache_identity(self):
        from repro.experiments.extension_jobs import (
            LocalizationShardJob, MeshJob, MultihopShardJob)
        from repro.experiments.extensions import run_granularity_comparison
        from repro.runner.spec import config_items
        import inspect

        frozen = config_items(ExperimentConfig(scale=0.01, seed=7))
        for a, b in [
            (MultihopShardJob(frozen, 2, 0.8), MultihopShardJob(frozen, 2, 0.8, batch=True)),
            (LocalizationShardJob(100), LocalizationShardJob(100, batch=True)),
            (MeshJob(PAIRS, 100), MeshJob(PAIRS, 100, batch=True)),
        ]:
            assert a.cache_token() != b.cache_token()
            if hasattr(a, "prepare_key"):
                assert a.prepare_key != b.prepare_key
        # granularity's knob is documented inert (marking demux / full RLI
        # stay on the engine by design): accepted by the driver, no fork
        assert "batch" in inspect.signature(run_granularity_comparison).parameters
