"""System-level property-based tests (conservation laws and invariants)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.lda import Lda
from repro.net.addressing import ip_to_int
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine
from repro.sim.pipeline import PipelineConfig, TwoSwitchPipeline
from repro.sim.topology import FatTree, LinkParams


class TestEngineConservation:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=2**31))
    def test_packets_delivered_or_dropped(self, n_packets, seed):
        """Every injected packet is eventually delivered or dropped —
        nothing is lost by the machinery itself."""
        rng = np.random.default_rng(seed)
        ft = FatTree(4, LinkParams(rate_bps=5e6, buffer_bytes=4000))
        packets = []
        for _ in range(n_packets):
            src_pod, dst_pod = rng.choice(4, size=2, replace=False)
            p = Packet(
                src=ft.host_address(int(src_pod), int(rng.integers(2)), int(rng.integers(2))),
                dst=ft.host_address(int(dst_pod), int(rng.integers(2)), int(rng.integers(2))),
                sport=int(rng.integers(1, 65535)),
                dport=int(rng.integers(1, 65535)),
                size=int(rng.integers(64, 1500)),
                ts=float(rng.uniform(0, 0.01)),
            )
            packets.append(p)
        packets.sort(key=lambda p: p.ts)
        engine = Engine()
        engine.inject_trace(packets, lambda p: ft.edge_of(p.src))
        engine.run()
        dropped = sum(p.dropped for p in packets)
        assert engine.delivered + dropped == n_packets
        assert engine.pending() == 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_byte_conservation_per_queue(self, seed):
        """bytes_in == bytes_accepted + bytes_dropped at every port."""
        rng = np.random.default_rng(seed)
        ft = FatTree(4, LinkParams(rate_bps=5e6, buffer_bytes=3000))
        packets = [
            Packet(src=ft.host_address(0, 0, 0), dst=ft.host_address(2, 1, 1),
                   sport=int(rng.integers(65535)), size=900, ts=i * 1e-4)
            for i in range(80)
        ]
        engine = Engine()
        engine.inject_trace(packets, lambda p: ft.edge_of(p.src))
        engine.run()
        for sw in ft.switches:
            for port in sw.ports:
                s = port.queue.stats
                assert s.bytes_in == s.bytes_accepted + s.bytes_dropped
                assert s.arrivals == s.accepted + s.dropped


class TestPipelineConservation:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=150),
           st.integers(min_value=0, max_value=50),
           st.integers(min_value=0, max_value=2**31))
    def test_arrivals_balance(self, n_regular, n_cross, seed):
        rng = np.random.default_rng(seed)
        regs = [Packet(src=ip_to_int("10.1.0.1"), dst=ip_to_int("10.2.0.1"),
                       sport=i, size=int(rng.integers(64, 1500)),
                       ts=float(i) * 1e-4)
                for i in range(n_regular)]
        cross = sorted(
            (float(rng.uniform(0, n_regular * 1e-4)),
             Packet(src=ip_to_int("10.9.0.1"), dst=ip_to_int("10.10.0.1"),
                    size=1500, kind=PacketKind.CROSS))
            for _ in range(n_cross)
        )
        cfg = PipelineConfig(4e6, 4e6, 4000, 4000, 0.0)
        result = TwoSwitchPipeline(cfg).run(regs, cross)
        survived_switch1 = result.queue1.stats.accepted
        assert result.queue1.stats.arrivals == n_regular
        assert result.arrivals2[PacketKind.REGULAR] == survived_switch1
        assert result.arrivals2[PacketKind.CROSS] == n_cross


class TestLdaProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=1e-6, max_value=1e-2, allow_nan=False),
                    min_size=1, max_size=300))
    def test_lossless_lda_is_exact(self, delays):
        """With no loss, the p=1.0 bank reconstructs the exact mean delay
        regardless of bucket collisions."""
        lda = Lda(n_buckets=16, bank_probs=(1.0,))
        t = 0.0
        for i, d in enumerate(delays):
            p = Packet(src=1, dst=2, sport=i % 17, dport=i % 5, size=100, ts=t)
            lda.on_tx(p, t)
            lda.on_rx(p, t + d)
            t += 1e-4
        est = lda.estimate()
        assert est.samples == len(delays)
        assert est.mean == pytest.approx(float(np.mean(delays)), rel=1e-6)
