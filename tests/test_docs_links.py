"""Intra-repo markdown link validation (the CI ``docs-check`` lane).

Every relative link and image in the tracked markdown pages —
``docs/``, the README, ROADMAP and CHANGES — must point at a file or
directory that exists in the checkout, and same-page anchors must match
a real heading.  External URLs are out of scope (CI must pass offline).
"""

import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / name for name in ("README.md", "ROADMAP.md", "CHANGES.md")]
    + list((REPO_ROOT / "docs").glob("**/*.md"))
)

# inline links/images: [text](target) / ![alt](target); reference-style
# definitions: [label]: target
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s*(\S+)", re.MULTILINE)


def _strip_code(text: str) -> str:
    """Drop fenced code blocks and inline code spans: links inside code
    samples are illustrative, not navigable."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def iter_links(path: pathlib.Path):
    text = _strip_code(path.read_text(encoding="utf-8"))
    for pattern in (_INLINE, _REFDEF):
        for match in pattern.finditer(text):
            yield match.group(1)


def heading_anchors(path: pathlib.Path):
    """GitHub-style anchors for every markdown heading in *path*."""
    anchors = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.startswith("#"):
            continue
        title = line.lstrip("#").strip()
        slug = re.sub(r"[^\w\- ]", "", title.lower()).replace(" ", "-")
        anchors.add(slug)
    return anchors


def test_doc_pages_exist():
    assert (REPO_ROOT / "docs" / "architecture.md").exists()
    assert (REPO_ROOT / "docs" / "internals-batch.md").exists()
    assert (REPO_ROOT / "docs" / "running.md").exists()
    assert DOC_FILES


@pytest.mark.parametrize("path", DOC_FILES,
                         ids=[str(p.relative_to(REPO_ROOT)) for p in DOC_FILES])
def test_intra_repo_links_resolve(path):
    broken = []
    for target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                broken.append(target)
                continue
        else:
            resolved = path  # pure anchor: same page
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_anchors(resolved):
                broken.append(target)
    assert not broken, f"broken links in {path.name}: {broken}"
